let default_usable (_ : Graph.edge) = true

(* One BFS from [src]; returns the hop-distance array (-1 = unreachable). *)
let distances g usable src =
  let n = Graph.node_count g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun (e : Graph.edge) ->
        if usable e && dist.(e.dst) < 0 then begin
          dist.(e.dst) <- dist.(v) + 1;
          Queue.push e.dst q
        end)
      (Graph.out_edges g v)
  done;
  dist

let distance g ?(usable = default_usable) ~src ~dst () =
  let dist = distances g usable src in
  if dist.(dst) < 0 then None else Some dist.(dst)

let shortest_path g ?(usable = default_usable) ~src ~dst () =
  if src = dst then None
  else begin
    let n = Graph.node_count g in
    let parent_edge : Graph.edge option array = Array.make n None in
    let seen = Array.make n false in
    seen.(src) <- true;
    let q = Queue.create () in
    Queue.push src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun (e : Graph.edge) ->
          if usable e && not seen.(e.dst) then begin
            seen.(e.dst) <- true;
            parent_edge.(e.dst) <- Some e;
            if e.dst = dst then found := true;
            Queue.push e.dst q
          end)
        (Graph.out_edges g v)
    done;
    if not seen.(dst) then None
    else begin
      let rec collect v acc =
        match parent_edge.(v) with
        | None -> acc
        | Some e -> collect e.src (e :: acc)
      in
      Some (Path.make g (collect dst []))
    end
  end

let all_shortest_paths g ?(usable = default_usable) ?(max_paths = 64) ~src ~dst
    () =
  if src = dst then []
  else begin
    (* Distances from every node to [dst] over the reversed graph; a
       forward edge (u,v) lies on a shortest path iff
       dist_to_dst u = dist_to_dst v + 1. *)
    let n = Graph.node_count g in
    let dist_to_dst = Array.make n (-1) in
    dist_to_dst.(dst) <- 0;
    let q = Queue.create () in
    Queue.push dst q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun (e : Graph.edge) ->
          if usable e && dist_to_dst.(e.src) < 0 then begin
            dist_to_dst.(e.src) <- dist_to_dst.(v) + 1;
            Queue.push e.src q
          end)
        (Graph.in_edges g v)
    done;
    if dist_to_dst.(src) < 0 then []
    else begin
      let results = ref [] and count = ref 0 in
      (* DFS along the shortest-path DAG, insertion order of out-edges. *)
      let rec walk v acc =
        if !count < max_paths then begin
          if v = dst then begin
            results := Path.make g (List.rev acc) :: !results;
            incr count
          end
          else
            List.iter
              (fun (e : Graph.edge) ->
                if
                  usable e
                  && dist_to_dst.(e.dst) >= 0
                  && dist_to_dst.(e.dst) = dist_to_dst.(v) - 1
                then walk e.dst (e :: acc))
              (Graph.out_edges g v)
        end
      in
      walk src [];
      List.rev !results
    end
  end

let reachable g ?(usable = default_usable) ~src () =
  let dist = distances g usable src in
  Array.map (fun d -> d >= 0) dist
