type edge = { id : int; src : int; dst : int; capacity : float }

type t = {
  mutable nodes : int;
  mutable edges : edge array;  (* used prefix is [0, n_edges) *)
  mutable n_edges : int;
  mutable out_adj : edge list array;  (* reverse insertion order inside *)
  mutable in_adj : edge list array;
}

let dummy_edge = { id = -1; src = -1; dst = -1; capacity = 0.0 }

let create ?(initial_nodes = 0) () =
  if initial_nodes < 0 then invalid_arg "Graph.create";
  {
    nodes = initial_nodes;
    edges = Array.make 64 dummy_edge;
    n_edges = 0;
    out_adj = Array.make (max 16 initial_nodes) [];
    in_adj = Array.make (max 16 initial_nodes) [];
  }

let node_count t = t.nodes
let edge_count t = t.n_edges

let ensure_adj t n =
  let cap = Array.length t.out_adj in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let grow a = Array.init cap' (fun i -> if i < cap then a.(i) else []) in
    t.out_adj <- grow t.out_adj;
    t.in_adj <- grow t.in_adj
  end

let add_node t =
  let id = t.nodes in
  t.nodes <- id + 1;
  ensure_adj t t.nodes;
  id

let add_nodes t n =
  if n < 0 then invalid_arg "Graph.add_nodes";
  t.nodes <- t.nodes + n;
  ensure_adj t t.nodes

let add_edge t ~src ~dst ~capacity =
  if src < 0 || src >= t.nodes then invalid_arg "Graph.add_edge: src";
  if dst < 0 || dst >= t.nodes then invalid_arg "Graph.add_edge: dst";
  if capacity < 0.0 then invalid_arg "Graph.add_edge: capacity";
  let id = t.n_edges in
  if id = Array.length t.edges then begin
    let edges' = Array.make (2 * id) dummy_edge in
    Array.blit t.edges 0 edges' 0 id;
    t.edges <- edges'
  end;
  let e = { id; src; dst; capacity } in
  t.edges.(id) <- e;
  t.n_edges <- id + 1;
  t.out_adj.(src) <- e :: t.out_adj.(src);
  t.in_adj.(dst) <- e :: t.in_adj.(dst);
  id

let add_link t ~a ~b ~capacity =
  let ab = add_edge t ~src:a ~dst:b ~capacity in
  let ba = add_edge t ~src:b ~dst:a ~capacity in
  (ab, ba)

let edge t id =
  if id < 0 || id >= t.n_edges then invalid_arg "Graph.edge: id out of range";
  t.edges.(id)

let out_edges t v =
  if v < 0 || v >= t.nodes then invalid_arg "Graph.out_edges";
  List.rev t.out_adj.(v)

let in_edges t v =
  if v < 0 || v >= t.nodes then invalid_arg "Graph.in_edges";
  List.rev t.in_adj.(v)

let out_degree t v =
  if v < 0 || v >= t.nodes then invalid_arg "Graph.out_degree";
  List.length t.out_adj.(v)

let find_edge t ~src ~dst =
  if src < 0 || src >= t.nodes then None
  else
    let rec last_match acc = function
      | [] -> acc
      | e :: rest ->
          last_match (if e.dst = dst then Some e else acc) rest
    in
    (* out_adj holds reverse insertion order; the last match in that order
       is the first-inserted edge. *)
    last_match None t.out_adj.(src)

let iter_edges t f =
  for i = 0 to t.n_edges - 1 do
    f t.edges.(i)
  done

let fold_edges t ~init ~f =
  let acc = ref init in
  iter_edges t (fun e -> acc := f !acc e);
  !acc

let reverse_edge t e = find_edge t ~src:e.dst ~dst:e.src

let total_capacity t = fold_edges t ~init:0.0 ~f:(fun acc e -> acc +. e.capacity)

let pp ppf t =
  Format.fprintf ppf "graph[%d nodes, %d edges, %.0f Mbps total]" t.nodes
    t.n_edges (total_capacity t)
