type edge = { id : int; src : int; dst : int; capacity : float }

(* Flat CSR layout. Edge attributes live in struct-of-arrays columns
   ([esrc]/[edst]/[ecap]) indexed by dense edge id; adjacency is a
   compressed-sparse-row pair (offsets into a flat edge-id array, one
   row per node, insertion order inside each row) rebuilt lazily after
   appends. The [edges] record array is kept as a compatibility view so
   existing call sites (and tests) still receive [edge] records; hot
   loops in {!Nu_net} index the columns directly and never allocate. *)
type t = {
  mutable nodes : int;
  mutable edges : edge array;  (* used prefix is [0, n_edges) *)
  mutable n_edges : int;
  mutable esrc : int array;  (* edge id -> source node *)
  mutable edst : int array;  (* edge id -> destination node *)
  mutable ecap : float array;  (* edge id -> capacity, Mbit/s *)
  (* CSR adjacency; valid iff csr_edges = n_edges && csr_nodes = nodes. *)
  mutable csr_edges : int;
  mutable csr_nodes : int;
  mutable out_off : int array;  (* length nodes+1 *)
  mutable out_ids : int array;  (* length n_edges, grouped by src *)
  mutable in_off : int array;
  mutable in_ids : int array;
}

let dummy_edge = { id = -1; src = -1; dst = -1; capacity = 0.0 }

let create ?(initial_nodes = 0) () =
  if initial_nodes < 0 then invalid_arg "Graph.create";
  {
    nodes = initial_nodes;
    edges = Array.make 64 dummy_edge;
    n_edges = 0;
    esrc = Array.make 64 (-1);
    edst = Array.make 64 (-1);
    ecap = Array.make 64 0.0;
    csr_edges = -1;
    csr_nodes = -1;
    out_off = [||];
    out_ids = [||];
    in_off = [||];
    in_ids = [||];
  }

let node_count t = t.nodes
let edge_count t = t.n_edges

let add_node t =
  let id = t.nodes in
  t.nodes <- id + 1;
  id

let add_nodes t n =
  if n < 0 then invalid_arg "Graph.add_nodes";
  t.nodes <- t.nodes + n

let add_edge t ~src ~dst ~capacity =
  if src < 0 || src >= t.nodes then invalid_arg "Graph.add_edge: src";
  if dst < 0 || dst >= t.nodes then invalid_arg "Graph.add_edge: dst";
  if capacity < 0.0 then invalid_arg "Graph.add_edge: capacity";
  let id = t.n_edges in
  if id = Array.length t.edges then begin
    let grow_rec a = Array.append a (Array.make id dummy_edge) in
    let grow_int a = Array.append a (Array.make id (-1)) in
    let grow_flt a = Array.append a (Array.make id 0.0) in
    t.edges <- grow_rec t.edges;
    t.esrc <- grow_int t.esrc;
    t.edst <- grow_int t.edst;
    t.ecap <- grow_flt t.ecap
  end;
  t.edges.(id) <- { id; src; dst; capacity };
  t.esrc.(id) <- src;
  t.edst.(id) <- dst;
  t.ecap.(id) <- capacity;
  t.n_edges <- id + 1;
  id

let add_link t ~a ~b ~capacity =
  let ab = add_edge t ~src:a ~dst:b ~capacity in
  let ba = add_edge t ~src:b ~dst:a ~capacity in
  (ab, ba)

let edge t id =
  if id < 0 || id >= t.n_edges then invalid_arg "Graph.edge: id out of range";
  t.edges.(id)

let src t id =
  if id < 0 || id >= t.n_edges then invalid_arg "Graph.src: id out of range";
  Array.unsafe_get t.esrc id

let dst t id =
  if id < 0 || id >= t.n_edges then invalid_arg "Graph.dst: id out of range";
  Array.unsafe_get t.edst id

let capacity t id =
  if id < 0 || id >= t.n_edges then
    invalid_arg "Graph.capacity: id out of range";
  Array.unsafe_get t.ecap id

(* Counting-sort CSR rebuild: stable in edge id, so each row lists its
   edges in insertion order — the order the old list-based adjacency
   exposed through [out_edges]/[in_edges]. Not domain-safe: callers must
   finish mutating the graph before sharing it across domains (freeze
   forces the rebuild up front). *)
let rebuild_csr t =
  let n = t.nodes and m = t.n_edges in
  let build_offsets endpoint =
    let off = Array.make (n + 1) 0 in
    for id = 0 to m - 1 do
      let v = endpoint.(id) in
      off.(v + 1) <- off.(v + 1) + 1
    done;
    for v = 1 to n do
      off.(v) <- off.(v) + off.(v - 1)
    done;
    off
  in
  let fill endpoint off =
    let cursor = Array.copy off in
    let ids = Array.make m (-1) in
    for id = 0 to m - 1 do
      let v = endpoint.(id) in
      ids.(cursor.(v)) <- id;
      cursor.(v) <- cursor.(v) + 1
    done;
    ids
  in
  let out_off = build_offsets t.esrc in
  t.out_ids <- fill t.esrc out_off;
  t.out_off <- out_off;
  let in_off = build_offsets t.edst in
  t.in_ids <- fill t.edst in_off;
  t.in_off <- in_off;
  t.csr_edges <- m;
  t.csr_nodes <- n

let[@inline] ensure_csr t =
  if t.csr_edges <> t.n_edges || t.csr_nodes <> t.nodes then rebuild_csr t

let freeze t = ensure_csr t

let iter_out t v f =
  if v < 0 || v >= t.nodes then invalid_arg "Graph.iter_out";
  ensure_csr t;
  let stop = t.out_off.(v + 1) in
  for k = t.out_off.(v) to stop - 1 do
    f (Array.unsafe_get t.out_ids k)
  done

let iter_in t v f =
  if v < 0 || v >= t.nodes then invalid_arg "Graph.iter_in";
  ensure_csr t;
  let stop = t.in_off.(v + 1) in
  for k = t.in_off.(v) to stop - 1 do
    f (Array.unsafe_get t.in_ids k)
  done

let out_edges t v =
  if v < 0 || v >= t.nodes then invalid_arg "Graph.out_edges";
  ensure_csr t;
  let acc = ref [] in
  for k = t.out_off.(v + 1) - 1 downto t.out_off.(v) do
    acc := t.edges.(t.out_ids.(k)) :: !acc
  done;
  !acc

let in_edges t v =
  if v < 0 || v >= t.nodes then invalid_arg "Graph.in_edges";
  ensure_csr t;
  let acc = ref [] in
  for k = t.in_off.(v + 1) - 1 downto t.in_off.(v) do
    acc := t.edges.(t.in_ids.(k)) :: !acc
  done;
  !acc

let out_degree t v =
  if v < 0 || v >= t.nodes then invalid_arg "Graph.out_degree";
  ensure_csr t;
  t.out_off.(v + 1) - t.out_off.(v)

let find_edge t ~src ~dst =
  if src < 0 || src >= t.nodes then None
  else begin
    ensure_csr t;
    (* CSR rows are in insertion order, so the first match is the
       first-inserted edge. *)
    let stop = t.out_off.(src + 1) in
    let rec scan k =
      if k >= stop then None
      else
        let id = t.out_ids.(k) in
        if t.edst.(id) = dst then Some t.edges.(id) else scan (k + 1)
    in
    scan t.out_off.(src)
  end

let iter_edges t f =
  for i = 0 to t.n_edges - 1 do
    f t.edges.(i)
  done

let fold_edges t ~init ~f =
  let acc = ref init in
  iter_edges t (fun e -> acc := f !acc e);
  !acc

let reverse_edge t e = find_edge t ~src:e.dst ~dst:e.src

let total_capacity t =
  let acc = ref 0.0 in
  for i = 0 to t.n_edges - 1 do
    acc := !acc +. t.ecap.(i)
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "graph[%d nodes, %d edges, %.0f Mbps total]" t.nodes
    t.n_edges (total_capacity t)
