(** Weighted shortest paths.

    Migration targets in the paper must avoid creating new congestion
    (constraint (5)); routing a migrated flow along the *least-loaded*
    feasible path is the natural policy. Dijkstra over a caller-supplied
    non-negative edge weight supports hop count ([fun _ -> 1.0]),
    utilisation-aware weights, and anything in between. *)

val shortest_path :
  Graph.t ->
  ?usable:(Graph.edge -> bool) ->
  weight:(Graph.edge -> float) ->
  src:int ->
  dst:int ->
  unit ->
  (Path.t * float) option
(** Minimum-total-weight path and its weight. Weights must be
    non-negative; raises [Invalid_argument] on a negative weight. [None]
    when unreachable or [src = dst]. Deterministic tie-breaking. *)

val widest_path :
  Graph.t ->
  ?usable:(Graph.edge -> bool) ->
  width:(Graph.edge -> float) ->
  src:int ->
  dst:int ->
  unit ->
  (Path.t * float) option
(** Maximum-bottleneck path: maximises the minimum of [width] along the
    path (e.g. residual bandwidth). Returns the path and its bottleneck
    width. Among equally wide paths prefers fewer hops. *)
