(** Network paths.

    A path is a contiguous, loop-free sequence of directed edges. Flows
    (paper §III-A) are unsplittable: each flow is pinned to exactly one
    path p ∈ P(f), so paths are the unit of placement, congestion checking
    and migration. *)

type t

val make : Graph.t -> Graph.edge list -> t
(** [make g edges] validates contiguity ([dst] of each edge equals [src]
    of the next), non-emptiness and node-simplicity (no repeated node,
    i.e. loop-free), and builds the path. Raises [Invalid_argument]
    otherwise. *)

val of_nodes : Graph.t -> int list -> t
(** [of_nodes g [v0; v1; ...; vn]] resolves each consecutive pair to the
    first matching edge. Raises [Invalid_argument] if some hop has no
    edge or the node list is shorter than 2. *)

val src : t -> int
val dst : t -> int

val edges : t -> Graph.edge list
(** Edges in traversal order. *)

val edge_ids : t -> int list

val hop_ids : t -> int array
(** Edge ids in traversal order as the path's internal flat array —
    zero-copy, so callers must not mutate it. This is the hot-path view:
    {!Nu_net} walks it with plain [for] loops. *)

val nodes : t -> int list
(** Visited nodes in order, [src] first, [dst] last. *)

val hops : t -> int
(** Number of edges. *)

val mentions_edge : t -> int -> bool
(** [mentions_edge p id] is true when edge [id] lies on [p]. *)

val mentions_node : t -> int -> bool

val bottleneck : t -> capacity_of:(Graph.edge -> float) -> float
(** Minimum of [capacity_of] over the path's edges — e.g. residual
    bandwidth of the path. *)

val equal : t -> t -> bool
(** Structural equality on edge id sequences. *)

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Renders as [v0->v1->...->vn]. *)
