(** Yen's algorithm: k shortest loopless paths.

    The candidate path set P(f) on irregular fabrics (leaf–spine with
    heterogeneous links, partially failed Fat-Trees) is not a pure ECMP
    set; Yen over a weight function provides a principled, ranked
    candidate list for the planner to try in order. *)

val k_shortest :
  Graph.t ->
  ?usable:(Graph.edge -> bool) ->
  ?weight:(Graph.edge -> float) ->
  k:int ->
  src:int ->
  dst:int ->
  unit ->
  (Path.t * float) list
(** Up to [k] loopless paths in non-decreasing total weight (default
    weight: hop count). Deterministic. Empty when unreachable, [k <= 0]
    or [src = dst]. *)
