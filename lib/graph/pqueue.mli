(** Minimal binary min-heap keyed by float priority.

    Used by {!Dijkstra} and {!Yen}, and by the discrete-event engine in
    {!Nu_sched} (event timestamps). Ties are broken by insertion order so
    that iteration over equal-priority items is deterministic — a
    requirement for reproducible simulations. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q prio v] inserts [v] with priority [prio]. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority entry. Equal priorities come
    out in insertion order (FIFO). *)

val peek : 'a t -> (float * 'a) option

val to_list : 'a t -> (float * 'a) list
(** Non-destructive snapshot in exact pop order (priority, then
    insertion order). Re-pushing the returned pairs into a fresh queue,
    in order, rebuilds a queue with identical pop behaviour — the
    checkpoint/restore path of {!Nu_serve} relies on this. *)

val clear : 'a t -> unit
