let default_usable (_ : Graph.edge) = true
let hop_weight (_ : Graph.edge) = 1.0

let k_shortest g ?(usable = default_usable) ?(weight = hop_weight) ~k ~src ~dst
    () =
  if k <= 0 || src = dst then []
  else begin
    match Dijkstra.shortest_path g ~usable ~weight ~src ~dst () with
    | None -> []
    | Some first ->
        let accepted = ref [ first ] in
        (* Candidate pool keyed by weight; entries also carry the path's
           edge ids for duplicate suppression. *)
        let candidates = Pqueue.create () in
        let seen = Hashtbl.create 64 in
        Hashtbl.replace seen (Path.edge_ids (fst first)) ();
        let add_candidate (p, w) =
          let key = Path.edge_ids p in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            Pqueue.push candidates w (p, w)
          end
        in
        let path_weight p =
          List.fold_left (fun acc e -> acc +. weight e) 0.0 (Path.edges p)
        in
        let rec fill () =
          if List.length !accepted < k then begin
            let prev_path = fst (List.hd !accepted) in
            let prev_edges = Array.of_list (Path.edges prev_path) in
            let prev_nodes = Array.of_list (Path.nodes prev_path) in
            (* For each spur node on the last accepted path, remove the
               edges that previous accepted paths share on that prefix and
               the prefix nodes themselves, then search a spur path. *)
            for i = 0 to Array.length prev_edges - 1 do
              let spur_node = prev_nodes.(i) in
              let root_edges = Array.sub prev_edges 0 i in
              let root_edge_list = Array.to_list root_edges in
              let banned_edges = Hashtbl.create 16 in
              List.iter
                (fun (p, _) ->
                  let edges = Path.edges p in
                  let rec shares_prefix remaining candidate =
                    match (remaining, candidate) with
                    | [], e :: _ -> Some e
                    | r :: rr, c :: cc when r == c || (r : Graph.edge).id = c.Graph.id ->
                        shares_prefix rr cc
                    | _ -> None
                  in
                  match shares_prefix root_edge_list edges with
                  | Some (e : Graph.edge) -> Hashtbl.replace banned_edges e.id ()
                  | None -> ())
                !accepted;
              let banned_nodes = Hashtbl.create 16 in
              for j = 0 to i - 1 do
                Hashtbl.replace banned_nodes prev_nodes.(j) ()
              done;
              let usable' (e : Graph.edge) =
                usable e
                && (not (Hashtbl.mem banned_edges e.id))
                && (not (Hashtbl.mem banned_nodes e.src))
                && not (Hashtbl.mem banned_nodes e.dst)
              in
              match
                Dijkstra.shortest_path g ~usable:usable' ~weight ~src:spur_node
                  ~dst ()
              with
              | None -> ()
              | Some (spur, _) -> (
                  let full_edges = root_edge_list @ Path.edges spur in
                  match Path.make g full_edges with
                  | p -> add_candidate (p, path_weight p)
                  | exception Invalid_argument _ -> ())
            done;
            match Pqueue.pop candidates with
            | None -> ()
            | Some (_, entry) ->
                accepted := entry :: !accepted;
                fill ()
          end
        in
        fill ();
        List.rev !accepted
  end
