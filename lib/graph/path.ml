type t = { edges : Graph.edge list; edge_id_set : (int, unit) Hashtbl.t }

let make _g edges =
  (match edges with
  | [] -> invalid_arg "Path.make: empty"
  | (first : Graph.edge) :: _ ->
      let rec check prev_dst seen = function
        | [] -> ()
        | (e : Graph.edge) :: rest ->
            if e.src <> prev_dst then
              invalid_arg "Path.make: edges are not contiguous";
            if List.mem e.dst seen then invalid_arg "Path.make: node loop";
            check e.dst (e.dst :: seen) rest
      in
      check first.src [ first.src ] edges);
  let edge_id_set = Hashtbl.create (List.length edges) in
  List.iter (fun (e : Graph.edge) -> Hashtbl.replace edge_id_set e.id ()) edges;
  { edges; edge_id_set }

let of_nodes g node_list =
  match node_list with
  | [] | [ _ ] -> invalid_arg "Path.of_nodes: need at least two nodes"
  | first :: rest ->
      let rec resolve prev acc = function
        | [] -> List.rev acc
        | v :: tl -> (
            match Graph.find_edge g ~src:prev ~dst:v with
            | None -> invalid_arg "Path.of_nodes: missing edge"
            | Some e -> resolve v (e :: acc) tl)
      in
      make g (resolve first [] rest)

let edges t = t.edges

let src t =
  match t.edges with
  | e :: _ -> e.Graph.src
  | [] -> assert false

let dst t =
  let rec last = function
    | [ (e : Graph.edge) ] -> e.dst
    | _ :: rest -> last rest
    | [] -> assert false
  in
  last t.edges

let edge_ids t = List.map (fun (e : Graph.edge) -> e.id) t.edges

let nodes t =
  match t.edges with
  | [] -> assert false
  | first :: _ ->
      first.Graph.src :: List.map (fun (e : Graph.edge) -> e.dst) t.edges

let hops t = List.length t.edges
let mentions_edge t id = Hashtbl.mem t.edge_id_set id
let mentions_node t v = List.mem v (nodes t)

let bottleneck t ~capacity_of =
  List.fold_left
    (fun acc e -> min acc (capacity_of e))
    infinity t.edges

let equal a b = edge_ids a = edge_ids b
let compare a b = Stdlib.compare (edge_ids a) (edge_ids b)

let pp ppf t =
  let ns = nodes t in
  Format.fprintf ppf "%a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "->")
       Format.pp_print_int)
    ns
