(* Edge ids and visited nodes are flat int arrays so the placement /
   feasibility loops in Nu_net can walk a path without chasing list
   cells or hashing; [edge_list] is kept as the historical list view for
   the many cold call sites that still consume records. Paths are short
   (fabric diameter), so membership tests are linear scans — faster than
   the hashtable they replace and allocation-free. *)
type t = {
  edge_list : Graph.edge list;  (* traversal order, compatibility view *)
  ids : int array;  (* edge ids, traversal order *)
  node_arr : int array;  (* visited nodes, src first, dst last *)
}

let make _g edges =
  (match edges with
  | [] -> invalid_arg "Path.make: empty"
  | (first : Graph.edge) :: _ ->
      let rec check prev_dst seen = function
        | [] -> ()
        | (e : Graph.edge) :: rest ->
            if e.src <> prev_dst then
              invalid_arg "Path.make: edges are not contiguous";
            if List.mem e.dst seen then invalid_arg "Path.make: node loop";
            check e.dst (e.dst :: seen) rest
      in
      check first.src [ first.src ] edges);
  let n = List.length edges in
  let ids = Array.make n (-1) in
  let node_arr = Array.make (n + 1) (-1) in
  List.iteri
    (fun i (e : Graph.edge) ->
      ids.(i) <- e.id;
      if i = 0 then node_arr.(0) <- e.src;
      node_arr.(i + 1) <- e.dst)
    edges;
  { edge_list = edges; ids; node_arr }

let of_nodes g node_list =
  match node_list with
  | [] | [ _ ] -> invalid_arg "Path.of_nodes: need at least two nodes"
  | first :: rest ->
      let rec resolve prev acc = function
        | [] -> List.rev acc
        | v :: tl -> (
            match Graph.find_edge g ~src:prev ~dst:v with
            | None -> invalid_arg "Path.of_nodes: missing edge"
            | Some e -> resolve v (e :: acc) tl)
      in
      make g (resolve first [] rest)

let edges t = t.edge_list
let src t = t.node_arr.(0)
let dst t = t.node_arr.(Array.length t.node_arr - 1)
let edge_ids t = Array.to_list t.ids

let hop_ids t = t.ids

let nodes t = Array.to_list t.node_arr
let hops t = Array.length t.ids

let mentions_edge t id =
  let ids = t.ids in
  let n = Array.length ids in
  let rec scan i = i < n && (Array.unsafe_get ids i = id || scan (i + 1)) in
  scan 0

let mentions_node t v =
  let ns = t.node_arr in
  let n = Array.length ns in
  let rec scan i = i < n && (Array.unsafe_get ns i = v || scan (i + 1)) in
  scan 0

let bottleneck t ~capacity_of =
  List.fold_left (fun acc e -> min acc (capacity_of e)) infinity t.edge_list

(* Same order as the list-lexicographic compare the id lists used to
   have: element-wise first, a strict prefix sorts before its
   extension. (Plain polymorphic compare on arrays orders by length
   first, which would reorder Yen's dedup keys.) *)
let compare a b =
  let la = Array.length a.ids and lb = Array.length b.ids in
  let rec go i =
    if i = la then if i = lb then 0 else -1
    else if i = lb then 1
    else
      let c = Int.compare (Array.unsafe_get a.ids i) (Array.unsafe_get b.ids i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b =
  Array.length a.ids = Array.length b.ids && compare a b = 0

let pp ppf t =
  let ns = nodes t in
  Format.fprintf ppf "%a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "->")
       Format.pp_print_int)
    ns
