let default_usable (_ : Graph.edge) = true

let shortest_path g ?(usable = default_usable) ~weight ~src ~dst () =
  if src = dst then None
  else begin
    let n = Graph.node_count g in
    let dist = Array.make n infinity in
    let parent_edge : Graph.edge option array = Array.make n None in
    let settled = Array.make n false in
    dist.(src) <- 0.0;
    let pq = Pqueue.create () in
    Pqueue.push pq 0.0 src;
    let rec run () =
      match Pqueue.pop pq with
      | None -> ()
      | Some (d, v) ->
          if not settled.(v) then begin
            settled.(v) <- true;
            if v <> dst then begin
              Graph.iter_out g v (fun id ->
                  let e = Graph.edge g id in
                  if usable e && not settled.(e.dst) then begin
                    let w = weight e in
                    if w < 0.0 then
                      invalid_arg "Dijkstra.shortest_path: negative weight";
                    let nd = d +. w in
                    if nd < dist.(e.dst) then begin
                      dist.(e.dst) <- nd;
                      parent_edge.(e.dst) <- Some e;
                      Pqueue.push pq nd e.dst
                    end
                  end);
              run ()
            end
          end
          else run ()
    in
    run ();
    if dist.(dst) = infinity then None
    else begin
      let rec collect v acc =
        match parent_edge.(v) with
        | None -> acc
        | Some e -> collect e.src (e :: acc)
      in
      Some (Path.make g (collect dst []), dist.(dst))
    end
  end

let widest_path g ?(usable = default_usable) ~width ~src ~dst () =
  if src = dst then None
  else begin
    (* Max-bottleneck Dijkstra: labels are (-width, hops) so the standard
       min-queue pops the widest (then shortest) candidate first. *)
    let n = Graph.node_count g in
    let best_width = Array.make n neg_infinity in
    let best_hops = Array.make n max_int in
    let parent_edge : Graph.edge option array = Array.make n None in
    let settled = Array.make n false in
    best_width.(src) <- infinity;
    best_hops.(src) <- 0;
    let pq = Pqueue.create () in
    Pqueue.push pq 0.0 src;
    let better w h v = w > best_width.(v) || (w = best_width.(v) && h < best_hops.(v)) in
    let rec run () =
      match Pqueue.pop pq with
      | None -> ()
      | Some (_, v) ->
          if not settled.(v) then begin
            settled.(v) <- true;
            if v <> dst then begin
              Graph.iter_out g v (fun id ->
                  let e = Graph.edge g id in
                  if usable e && not settled.(e.dst) then begin
                    let w = min best_width.(v) (width e) in
                    let h = best_hops.(v) + 1 in
                    if better w h e.dst then begin
                      best_width.(e.dst) <- w;
                      best_hops.(e.dst) <- h;
                      parent_edge.(e.dst) <- Some e;
                      (* Priority favours width first, then fewer hops. *)
                      Pqueue.push pq (-.w +. (1e-9 *. float_of_int h)) e.dst
                    end
                  end);
              run ()
            end
          end
          else run ()
    in
    run ();
    if best_width.(dst) = neg_infinity then None
    else begin
      let rec collect v acc =
        match parent_edge.(v) with
        | None -> acc
        | Some e -> collect e.src (e :: acc)
      in
      Some (Path.make g (collect dst []), best_width.(dst))
    end
  end
