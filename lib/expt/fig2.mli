(** Fig. 2 — flow-level vs event-level update order (worked example).

    Three update events, each a group of unit-duration flows, served one
    flow per time slot. Flow-level scheduling interleaves flows of
    different events, so every event finishes late; event-level
    scheduling runs each event's group contiguously, so early events
    finish early. The averages differ while the tail (the last
    completion) is identical — the paper's motivating arithmetic. *)

type schedule = {
  label : string;
  completions : int list;  (** Per-event completion slot, event order. *)
  average : float;
  tail : int;
}

val event_level : flows_per_event:int list -> schedule
(** Contiguous groups in arrival order. *)

val flow_level : flows_per_event:int list -> schedule
(** Round-robin interleaving across events (the paper's Fig. 2a). *)

val run : unit -> unit
(** Print both schedules for the paper's 3-event/12-flow example and the
    resulting averages. *)
