(** Aligned text tables for experiment output.

    Every figure regenerator prints its series through this module so the
    harness output is uniform and machine-parsable (a header line starting
    with '#', then whitespace-aligned columns). *)

type t

val create : title:string -> columns:string list -> t
(** Start a table. [columns] are header labels. *)

val add_row : t -> string list -> unit
(** Append a row; must match the column count. *)

val add_floats : t -> float list -> unit
(** Row of "%.4g"-formatted numbers. *)

val add_mixed : t -> string -> float list -> unit
(** Row with a leading label cell then numbers. *)

val print : t -> unit
(** Render to stdout with aligned columns. *)

val to_string : t -> string
