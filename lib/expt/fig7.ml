type point = {
  utilization : float;
  het_avg_red : float;
  het_tail_red : float;
  sync_avg_red : float;
  sync_tail_red : float;
}

let default_utils = [ 0.5; 0.6; 0.7; 0.8; 0.9 ]

let reductions ?seeds ~alpha ~n_events ~utilization shape =
  let seeds = Option.value seeds ~default:[ 42; 43 ] in
  let setup =
    {
      Workload.default_setup with
      Workload.n_events;
      shape;
      utilization;
      churn = false;  (* §V-D: background kept static *)
    }
  in
  let results =
    Workload.averaged setup ~seeds [ Policy.Fifo; Policy.Plmtf { alpha } ]
  in
  match results with
  | [ (_, fifo); (_, plmtf) ] ->
      let mean = Workload.mean_of in
      let avg s = s.Metrics.avg_ect_s and tail s = s.Metrics.tail_ect_s in
      ( Workload.reduction_pct ~baseline:(mean avg fifo) (mean avg plmtf),
        Workload.reduction_pct ~baseline:(mean tail fifo) (mean tail plmtf) )
  | _ -> assert false

let compute ?seeds ?(alpha = Policy.default_alpha) ?(n_events = 30)
    ?(utilizations = default_utils) () =
  List.map
    (fun utilization ->
      let het_avg_red, het_tail_red =
        reductions ?seeds ~alpha ~n_events ~utilization Event_gen.Heterogeneous
      in
      let sync_avg_red, sync_tail_red =
        reductions ?seeds ~alpha ~n_events ~utilization Event_gen.Synchronous
      in
      { utilization; het_avg_red; het_tail_red; sync_avg_red; sync_tail_red })
    utilizations

let run ?seeds ?alpha () =
  let points = compute ?seeds ?alpha () in
  let table =
    Table.create
      ~title:
        "Fig.7: P-LMTF reduction vs FIFO by event type (30 events, static \
         background, alpha=4)"
      ~columns:
        [
          "util";
          "het_avg_red%";
          "het_tail_red%";
          "sync_avg_red%";
          "sync_tail_red%";
        ]
  in
  List.iter
    (fun p ->
      Table.add_floats table
        [
          p.utilization;
          p.het_avg_red;
          p.het_tail_red;
          p.sync_avg_red;
          p.sync_tail_red;
        ])
    points;
  Table.print table
