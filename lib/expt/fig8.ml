type point = {
  n_events : int;
  lmtf_avg_q_red : float;
  lmtf_worst_q_red : float;
  plmtf_avg_q_red : float;
  plmtf_worst_q_red : float;
}

let default_counts = [ 10; 20; 30; 40; 50 ]

let compute ?(seeds = [ 42; 43; 44 ]) ?(alpha = Policy.default_alpha)
    ?(event_counts = default_counts) () =
  List.map
    (fun n_events ->
      let setup = { Workload.default_setup with Workload.n_events } in
      let results =
        Workload.averaged setup ~seeds
          [ Policy.Fifo; Policy.Lmtf { alpha }; Policy.Plmtf { alpha } ]
      in
      match results with
      | [ (_, fifo); (_, lmtf); (_, plmtf) ] ->
          let mean = Workload.mean_of in
          let avg_q s = s.Metrics.avg_queuing_s in
          let worst_q s = s.Metrics.worst_queuing_s in
          let red get better =
            Workload.reduction_pct ~baseline:(mean get fifo) (mean get better)
          in
          {
            n_events;
            lmtf_avg_q_red = red avg_q lmtf;
            lmtf_worst_q_red = red worst_q lmtf;
            plmtf_avg_q_red = red avg_q plmtf;
            plmtf_worst_q_red = red worst_q plmtf;
          }
      | _ -> assert false)
    event_counts

let run ?seeds ?alpha () =
  let points = compute ?seeds ?alpha () in
  let table =
    Table.create
      ~title:
        "Fig.8: queuing-delay reduction vs FIFO (heterogeneous events, \
         alpha=4)"
      ~columns:
        [
          "events";
          "lmtf_avgQ_red%";
          "lmtf_worstQ_red%";
          "plmtf_avgQ_red%";
          "plmtf_worstQ_red%";
        ]
  in
  List.iter
    (fun p ->
      Table.add_floats table
        [
          float_of_int p.n_events;
          p.lmtf_avg_q_red;
          p.lmtf_worst_q_red;
          p.plmtf_avg_q_red;
          p.plmtf_worst_q_red;
        ])
    points;
  Table.print table
