(** Extension experiment: a queue mixing the paper's three update issues.

    The paper's introduction motivates update events with switch
    upgrades, network failures and VM migrations, but its evaluation
    generates only flow-addition events. This experiment schedules a
    queue interleaving all four kinds — additions, VM migrations, switch
    upgrades and link failures — under FIFO / LMTF / P-LMTF, checking
    that the event-level machinery and the schedulers' advantages carry
    over to reroute-dominated events. *)

type mix = {
  additions : int;
  vm_migrations : int;
  switch_upgrades : int;
  link_failures : int;
}

val default_mix : mix
(** 12 additions, 8 VM migrations, 6 switch upgrades, 4 link failures. *)

val build_events :
  Scenario.t -> ?mix:mix -> seed:int -> unit -> Event.t list * Net_state.t
(** Build the mixed queue against a scenario. Switch-upgrade and
    link-failure events are derived from (and the failed links disabled
    in) a dedicated copy of the scenario's network, which is returned —
    run the engine on copies of that state. *)

val run : ?seed:int -> ?alpha:int -> unit -> unit
(** Print the three policies' summaries and reductions vs FIFO. *)
