(** Extension experiment: Poisson event arrivals.

    The paper's evaluation queues all events at t = 0 (a maintenance
    batch). Under continuous operation events arrive over time; the
    schedulers only matter while a backlog exists. This study sweeps the
    offered load (mean event inter-arrival time) for a fixed 40-event
    workload and reports average ECT and queuing delay per policy:
    at low load every policy collapses to "serve immediately", while at
    high load the batch-regime gaps reappear — locating the contention
    threshold where event-level scheduling starts to pay. *)

type point = {
  mean_interarrival_s : float;
  fifo_avg_ect : float;
  lmtf_avg_ect : float;
  plmtf_avg_ect : float;
  fifo_avg_q : float;
  lmtf_avg_q : float;
  plmtf_avg_q : float;
}

val compute :
  ?seed:int ->
  ?alpha:int ->
  ?n_events:int ->
  ?interarrivals:float list ->
  unit ->
  point list
(** Defaults: seed 42, α = 4, 40 events, inter-arrivals
    [0.25; 0.5; 1; 2; 4] seconds. *)

val run : ?seed:int -> ?alpha:int -> unit -> unit
