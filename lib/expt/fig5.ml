type point = {
  n_events : int;
  flow_avg_ect : float;
  flow_tail_ect : float;
  event_avg_ect : float;
  event_tail_ect : float;
}

let default_counts = [ 10; 20; 30; 40; 50 ]

let compute ?(seeds = [ 42; 43 ]) ?(event_counts = default_counts) () =
  List.map
    (fun n_events ->
      let setup = { Workload.default_setup with Workload.n_events } in
      let results =
        Workload.averaged setup ~seeds
          [ Policy.Flow_level Policy.Round_robin; Policy.Fifo ]
      in
      match results with
      | [ (_, flow_summaries); (_, event_summaries) ] ->
          {
            n_events;
            flow_avg_ect =
              Workload.mean_of (fun s -> s.Metrics.avg_ect_s) flow_summaries;
            flow_tail_ect =
              Workload.mean_of (fun s -> s.Metrics.tail_ect_s) flow_summaries;
            event_avg_ect =
              Workload.mean_of (fun s -> s.Metrics.avg_ect_s) event_summaries;
            event_tail_ect =
              Workload.mean_of (fun s -> s.Metrics.tail_ect_s) event_summaries;
          }
      | _ -> assert false)
    event_counts

let run ?seeds () =
  let points = compute ?seeds () in
  let table =
    Table.create
      ~title:
        "Fig.5: avg & tail ECT vs number of queued events (10-100 \
         flows/event, util 70%)"
      ~columns:
        [
          "events";
          "fl_avg_s";
          "fl_tail_s";
          "el_avg_s";
          "el_tail_s";
          "avg_speedup";
          "tail_speedup";
        ]
  in
  List.iter
    (fun p ->
      Table.add_floats table
        [
          float_of_int p.n_events;
          p.flow_avg_ect;
          p.flow_tail_ect;
          p.event_avg_ect;
          p.event_tail_ect;
          p.flow_avg_ect /. p.event_avg_ect;
          p.flow_tail_ect /. p.event_tail_ect;
        ])
    points;
  Table.print table
