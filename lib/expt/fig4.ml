type point = {
  mean_flows : int;
  flow_avg_ect : float;
  flow_tail_ect : float;
  event_avg_ect : float;
  event_tail_ect : float;
}

let default_means = [ 15; 25; 35; 45; 55; 65; 75 ]

let compute ?(seeds = [ 42; 43 ]) ?(n_events = 10) ?(means = default_means) ()
    =
  List.map
    (fun mean ->
      let setup =
        {
          Workload.default_setup with
          Workload.n_events;
          shape = Event_gen.Range (mean - 5, mean + 5);
        }
      in
      let results =
        Workload.averaged setup ~seeds
          [ Policy.Flow_level Policy.Round_robin; Policy.Fifo ]
      in
      match results with
      | [ (_, flow_summaries); (_, event_summaries) ] ->
          {
            mean_flows = mean;
            flow_avg_ect =
              Workload.mean_of (fun s -> s.Metrics.avg_ect_s) flow_summaries;
            flow_tail_ect =
              Workload.mean_of (fun s -> s.Metrics.tail_ect_s) flow_summaries;
            event_avg_ect =
              Workload.mean_of (fun s -> s.Metrics.avg_ect_s) event_summaries;
            event_tail_ect =
              Workload.mean_of (fun s -> s.Metrics.tail_ect_s) event_summaries;
          }
      | _ -> assert false)
    means

let run ?seeds () =
  let points = compute ?seeds () in
  let flow_avg_max =
    List.fold_left (fun m p -> max m p.flow_avg_ect) 0.0 points
  in
  let flow_tail_max =
    List.fold_left (fun m p -> max m p.flow_tail_ect) 0.0 points
  in
  let table =
    Table.create
      ~title:
        "Fig.4: avg & tail ECT, flow-level vs event-level, 10 events, util \
         ~70% (normalised by flow-level max)"
      ~columns:
        [
          "flows/event";
          "fl_avg";
          "fl_tail";
          "el_avg";
          "el_tail";
          "avg_speedup";
          "tail_speedup";
        ]
  in
  List.iter
    (fun p ->
      Table.add_floats table
        [
          float_of_int p.mean_flows;
          p.flow_avg_ect /. flow_avg_max;
          p.flow_tail_ect /. flow_tail_max;
          p.event_avg_ect /. flow_avg_max;
          p.event_tail_ect /. flow_tail_max;
          p.flow_avg_ect /. p.event_avg_ect;
          p.flow_tail_ect /. p.event_tail_ect;
        ])
    points;
  Table.print table
