type schedule = {
  label : string;
  completions : int list;
  average : float;
  tail : int;
}

let finish label completions =
  let n = List.length completions in
  if n = 0 then invalid_arg "Fig2: no events";
  {
    label;
    completions;
    average = float_of_int (List.fold_left ( + ) 0 completions) /. float_of_int n;
    tail = List.fold_left max 0 completions;
  }

let event_level ~flows_per_event =
  let _, completions =
    List.fold_left
      (fun (slot, acc) flows ->
        let slot = slot + flows in
        (slot, slot :: acc))
      (0, []) flows_per_event
  in
  finish "event-level" (List.rev completions)

let flow_level ~flows_per_event =
  (* Round-robin: slot s serves the next pending flow of event (s mod n)
     among events that still have flows. An event completes at the slot
     serving its last flow. *)
  let remaining = Array.of_list flows_per_event in
  let n = Array.length remaining in
  let completions = Array.make n 0 in
  let slot = ref 0 in
  let total = Array.fold_left ( + ) 0 remaining in
  let served = ref 0 in
  let next = ref 0 in
  while !served < total do
    if remaining.(!next) > 0 then begin
      incr slot;
      remaining.(!next) <- remaining.(!next) - 1;
      if remaining.(!next) = 0 then completions.(!next) <- !slot;
      incr served
    end;
    next := (!next + 1) mod n
  done;
  finish "flow-level" (Array.to_list completions)

let pp_schedule s =
  Printf.printf "  %-12s completions = [%s]  avg ECT = %.2f  tail ECT = %d\n"
    s.label
    (String.concat "; " (List.map string_of_int s.completions))
    s.average s.tail

let run () =
  print_endline
    "## Fig.2: update orders of flows under flow-level and event-level \
     methods";
  let flows_per_event = [ 4; 4; 4 ] in
  let fl = flow_level ~flows_per_event in
  let el = event_level ~flows_per_event in
  pp_schedule fl;
  pp_schedule el;
  Printf.printf
    "  event-level average ECT %.2f < flow-level %.2f; tails equal (%d = %d)\n"
    el.average fl.average el.tail fl.tail;
  assert (el.average < fl.average);
  assert (el.tail = fl.tail);
  flush stdout
