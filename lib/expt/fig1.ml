type point = {
  trace : string;
  utilization : float;
  p_desired_small : float;
  p_desired_mid : float;
  p_desired_large : float;
  p_desired_all : float;
  p_any_all : float;
}

let default_utilizations = [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]

(* A probe flow succeeds "without migration" when the checked path has
   residual bandwidth for its demand; probes never mutate the state. *)
let probe net record =
  let demand = Flow_record.demand_mbps record in
  let desired_ok =
    match Routing.desired_path net record with
    | Some p -> Net_state.path_feasible net p ~demand
    | None -> false
  in
  let any_ok =
    List.exists
      (fun p -> Net_state.path_feasible net p ~demand)
      (Net_state.candidate_paths net record)
  in
  (desired_ok, any_ok)

let ratio num den = if den = 0 then nan else float_of_int num /. float_of_int den

let point_of ~trace ~utilization ~seed ~samples background make_probe =
  let scenario = Scenario.prepare ~utilization ~seed ~background () in
  let probe_rng = Prng.create (seed + 17) in
  let counts = Hashtbl.create 8 in
  let bump key ok =
    let succ, tot =
      match Hashtbl.find_opt counts key with Some c -> c | None -> (0, 0)
    in
    Hashtbl.replace counts key ((if ok then succ + 1 else succ), tot + 1)
  in
  for i = 0 to samples - 1 do
    let record = make_probe probe_rng scenario i in
    let desired_ok, any_ok = probe scenario.Scenario.net record in
    let demand = Flow_record.demand_mbps record in
    let size_class =
      if demand < 10.0 then `Small else if demand <= 50.0 then `Mid else `Large
    in
    bump `All_desired desired_ok;
    bump `All_any any_ok;
    bump
      (match size_class with
      | `Small -> `Small_desired
      | `Mid -> `Mid_desired
      | `Large -> `Large_desired)
      desired_ok
  done;
  let rate key =
    match Hashtbl.find_opt counts key with
    | Some (succ, tot) -> ratio succ tot
    | None -> nan
  in
  {
    trace;
    utilization;
    p_desired_small = rate `Small_desired;
    p_desired_mid = rate `Mid_desired;
    p_desired_large = rate `Large_desired;
    p_desired_all = rate `All_desired;
    p_any_all = rate `All_any;
  }

let compute ?(seed = 42) ?(samples = 400)
    ?(utilizations = default_utilizations) () =
  let yahoo_probe rng (scenario : Scenario.t) i =
    (Yahoo_trace.generate ~first_id:(1_000_000 + i) rng
       ~host_count:scenario.Scenario.host_count ~n:1).(0)
  in
  let benson_probe rng (scenario : Scenario.t) i =
    (Benson_trace.generate ~first_id:(1_000_000 + i) rng
       ~host_count:scenario.Scenario.host_count ~n:1).(0)
  in
  List.concat_map
    (fun u ->
      [
        point_of ~trace:"yahoo" ~utilization:u ~seed ~samples Scenario.Yahoo
          yahoo_probe;
        point_of ~trace:"random" ~utilization:u ~seed ~samples Scenario.Benson
          benson_probe;
      ])
    utilizations

let run ?seed ?samples () =
  let points = compute ?seed ?samples () in
  let table =
    Table.create
      ~title:
        "Fig.1: success probability of inserting a flow without migration \
         (fat-tree k=8)"
      ~columns:
        [
          "trace"; "util"; "p_small"; "p_mid"; "p_large"; "p_all"; "p_anypath";
        ]
  in
  List.iter
    (fun p ->
      Table.add_mixed table p.trace
        [
          p.utilization;
          p.p_desired_small;
          p.p_desired_mid;
          p.p_desired_large;
          p.p_desired_all;
          p.p_any_all;
        ])
    points;
  Table.print table
