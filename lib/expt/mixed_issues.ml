type mix = {
  additions : int;
  vm_migrations : int;
  switch_upgrades : int;
  link_failures : int;
}

let default_mix =
  { additions = 12; vm_migrations = 8; switch_upgrades = 6; link_failures = 4 }

let vm_flows rng ~host_count ~first_id ~n =
  List.init n (fun i ->
      let src = Prng.int rng host_count in
      let dst =
        let d = Prng.int rng (host_count - 1) in
        if d >= src then d + 1 else d
      in
      let demand = Prng.float_in rng 50.0 200.0 in
      let duration = Prng.float_in rng 10.0 40.0 in
      Flow_record.v ~id:(first_id + i) ~src ~dst
        ~size_mbit:(demand *. duration) ~duration_s:duration ~arrival_s:0.0)

let build_events (scenario : Scenario.t) ?(mix = default_mix) ~seed () =
  let rng = Prng.create seed in
  let net = Net_state.copy scenario.Scenario.net in
  let next_event = ref 0 in
  let fresh_event_id () =
    let id = !next_event in
    incr next_event;
    id
  in
  let additions =
    Event_gen.generate ~flow_params:Scenario.event_flow_params
      ~first_flow_id:1_000_000 rng ~host_count:scenario.Scenario.host_count
      ~n_events:mix.additions
    |> Event.of_specs
    |> List.map (fun ev -> { ev with Event.id = fresh_event_id () })
  in
  let vm_events =
    List.init mix.vm_migrations (fun i ->
        Event.vm_migration_event ~id:(fresh_event_id ()) ~arrival_s:0.0
          ~flows:
            (vm_flows rng ~host_count:scenario.Scenario.host_count
               ~first_id:(2_000_000 + (i * 100))
               ~n:(Prng.int_in rng 3 8)))
  in
  (* Switch upgrades over distinct aggregation switches with traffic. *)
  let ft = scenario.Scenario.fat_tree in
  let upgrade_events =
    let made = ref [] in
    let attempts = ref 0 in
    while List.length !made < mix.switch_upgrades && !attempts < 64 do
      incr attempts;
      let pod = Prng.int rng (Fat_tree.k ft) in
      let j = Prng.int rng (Fat_tree.k ft / 2) in
      let switch = Fat_tree.aggregation ft ~pod j in
      let already =
        List.exists
          (fun ev ->
            match ev.Event.kind with
            | Event.Switch_upgrade s -> s = switch
            | _ -> false)
          !made
      in
      if (not already) && Net_state.flows_through_node net switch <> [] then
        made :=
          Event.switch_upgrade_event net ~id:(fresh_event_id ()) ~arrival_s:0.0
            ~switch
          :: !made
    done;
    List.rev !made
  in
  (* Link failures: disable distinct busy fabric links, then build the
     evacuation events. *)
  let failure_events =
    let fabric_edges = Array.of_list (Net_state.fabric_edges net) in
    let made = ref [] in
    let attempts = ref 0 in
    while List.length !made < mix.link_failures && !attempts < 64 do
      incr attempts;
      let edge = fabric_edges.(Prng.int rng (Array.length fabric_edges)) in
      if
        (not (Net_state.edge_disabled net edge))
        && Net_state.flows_on_edge net edge <> []
      then begin
        Net_state.disable_edge net edge;
        (match Graph.reverse_edge (Net_state.graph net) (Graph.edge (Net_state.graph net) edge) with
        | Some r -> Net_state.disable_edge net r.Graph.id
        | None -> ());
        made :=
          Event.link_failure_event net ~id:(fresh_event_id ()) ~arrival_s:0.0
            ~edge
          :: !made
      end
    done;
    List.rev !made
  in
  (* Interleave the kinds deterministically so the queue alternates. *)
  let all = additions @ vm_events @ upgrade_events @ failure_events in
  let arr = Array.of_list all in
  Prng.shuffle rng arr;
  let events =
    Array.to_list arr
    |> List.mapi (fun i ev -> { ev with Event.id = i })
  in
  (events, net)

let run ?(seed = 42) ?(alpha = Policy.default_alpha) () =
  (* Switch upgrades evacuate a quarter of a pod's uplink capacity into
     the remaining aggregation switches, which is only satisfiable when
     they have headroom: the mixed experiment therefore runs at 50%
     utilisation (a realistic maintenance window), not the 70% of the
     addition-only figures. *)
  let scenario = Scenario.prepare ~utilization:0.50 ~seed () in
  let events, net = build_events scenario ~seed:(seed + 1) () in
  let by_kind kind_name pred =
    let n = List.length (List.filter pred events) in
    Printf.printf "  %-16s %d events\n" kind_name n
  in
  print_endline "## Extension: mixed update-issue queue";
  by_kind "additions" (fun ev -> ev.Event.kind = Event.Additions);
  by_kind "vm-migrations" (fun ev -> ev.Event.kind = Event.Vm_migration);
  by_kind "switch-upgrades" (fun ev ->
      match ev.Event.kind with Event.Switch_upgrade _ -> true | _ -> false);
  by_kind "link-failures" (fun ev ->
      match ev.Event.kind with Event.Link_failure _ -> true | _ -> false);
  let summaries =
    List.map
      (fun policy ->
        Metrics.of_run
          (Engine.run ~seed:(seed + 2) ~net:(Net_state.copy net) ~events policy))
      [ Policy.Fifo; Policy.Lmtf { alpha }; Policy.Plmtf { alpha } ]
  in
  List.iter (fun s -> Format.printf "%a@." Metrics.pp_summary s) summaries;
  match summaries with
  | baseline :: others ->
      Format.printf "%a@." (fun ppf -> Metrics.pp_comparison ppf ~baseline) others
  | [] -> ()
