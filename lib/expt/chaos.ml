type params = {
  seed : int;
  fault_seed : int;
  fault_rate : float;
  retry_max : int;
  utilization : float;
  n_events : int;
  alpha : int;
}

let default_params =
  {
    seed = 42;
    fault_seed = 7;
    fault_rate = 0.2;
    retry_max = 3;
    utilization = 0.70;
    n_events = 30;
    alpha = 4;
  }

type result = {
  params : params;
  schedule_length : int;
  run : Engine.run_result;
  recovery : Recovery.t;
  violations : int;
  digest : string;
}

let run ?(params = default_params) ?policy () =
  let policy =
    match policy with
    | Some p -> p
    | None -> Policy.Plmtf { alpha = params.alpha }
  in
  let scenario =
    Scenario.prepare ~utilization:params.utilization ~seed:params.seed ()
  in
  let events = Scenario.events scenario ~n:params.n_events in
  let config =
    {
      Fault_model.default_config with
      Fault_model.rate_per_s = params.fault_rate;
    }
  in
  let schedule =
    Fault_model.generate ~config ~seed:params.fault_seed
      scenario.Scenario.topology
  in
  let retry =
    { Retry_policy.default with Retry_policy.max_attempts = params.retry_max }
  in
  let injector = Injector.create ~retry schedule in
  let run =
    Engine.run ~seed:(params.seed + 1) ~injector
      ~net:(Net_state.copy scenario.Scenario.net)
      ~events policy
  in
  let recovery = Injector.recovery injector in
  {
    params;
    schedule_length = List.length schedule;
    run;
    recovery;
    violations = Injector.violations injector;
    digest = Recovery.digest recovery;
  }

let result_to_json r =
  let summary = Metrics.of_run r.run in
  Obs.Json.Obj
    [
      ( "params",
        Obs.Json.Obj
          [
            ("seed", Obs.Json.Int r.params.seed);
            ("fault_seed", Obs.Json.Int r.params.fault_seed);
            ("fault_rate", Obs.Json.Float r.params.fault_rate);
            ("retry_max", Obs.Json.Int r.params.retry_max);
            ("utilization", Obs.Json.Float r.params.utilization);
            ("n_events", Obs.Json.Int r.params.n_events);
            ("alpha", Obs.Json.Int r.params.alpha);
          ] );
      ("policy", Obs.Json.String (Policy.name r.run.Engine.policy));
      ("schedule_length", Obs.Json.Int r.schedule_length);
      ("recovery", Recovery.stats_to_json r.recovery);
      ("avg_ect_s", Obs.Json.Float summary.Metrics.avg_ect_s);
      ("makespan_s", Obs.Json.Float summary.Metrics.makespan_s);
      ("rounds", Obs.Json.Int r.run.Engine.rounds);
    ]

let print r =
  let s = Recovery.stats r.recovery in
  Format.printf "chaos: policy %s, %d faults scheduled, seed %d/%d@."
    (Policy.name r.run.Engine.policy)
    r.schedule_length r.params.seed r.params.fault_seed;
  Format.printf
    "  applied %d, aborts %d, retries %d, degraded %d, evacuated %d, dropped \
     %d@."
    s.Recovery.faults_applied s.Recovery.aborts s.Recovery.retries
    s.Recovery.degraded s.Recovery.evacuated s.Recovery.dropped;
  Format.printf "  invariant violations: %d@." r.violations;
  Format.printf "  recovery digest: %s@." r.digest
