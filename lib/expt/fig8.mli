(** Fig. 8 — event queuing delay reductions vs FIFO.

    For 10-50 queued heterogeneous events (α = 4, utilisation
    fluctuating 50-70%), the paper reports reductions in average and
    worst-case event queuing delay: LMTF 20-40% (average) and 10-30%
    (worst case); P-LMTF 67-83% and 60-74%. *)

type point = {
  n_events : int;
  lmtf_avg_q_red : float;
  lmtf_worst_q_red : float;
  plmtf_avg_q_red : float;
  plmtf_worst_q_red : float;
}

val compute :
  ?seeds:int list ->
  ?alpha:int ->
  ?event_counts:int list ->
  unit ->
  point list

val run : ?seeds:int list -> ?alpha:int -> unit -> unit
