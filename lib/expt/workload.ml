type setup = {
  utilization : float;
  n_events : int;
  shape : Event_gen.shape;
  seed : int;
  churn : bool;
  exec : Exec_model.t;
}

let default_setup =
  {
    utilization = 0.70;
    n_events = 30;
    shape = Event_gen.Heterogeneous;
    seed = 42;
    churn = true;
    exec = Exec_model.default;
  }

let run_policies setup policies =
  let scenario =
    Scenario.prepare ~utilization:setup.utilization ~seed:setup.seed ()
  in
  let events = Scenario.events ~shape:setup.shape scenario ~n:setup.n_events in
  List.map
    (fun policy ->
      (* Fresh churn per run: each policy must see the same regeneration
         stream from the same starting point. *)
      let churn =
        if setup.churn then
          Some
            (Scenario.churn ~target:setup.utilization ~seed:(setup.seed + 2)
               scenario)
        else None
      in
      let run =
        Engine.run ~exec:setup.exec ?churn ~seed:(setup.seed + 1)
          ~net:(Net_state.copy scenario.Scenario.net)
          ~events policy
      in
      Metrics.of_run run)
    policies

let averaged setup ~seeds policies =
  let per_seed =
    List.map (fun seed -> run_policies { setup with seed } policies) seeds
  in
  List.mapi
    (fun i policy -> (policy, List.map (fun summaries -> List.nth summaries i) per_seed))
    policies

let mean_of get summaries =
  match summaries with
  | [] -> invalid_arg "Workload.mean_of: empty"
  | _ ->
      List.fold_left (fun acc s -> acc +. get s) 0.0 summaries
      /. float_of_int (List.length summaries)

let reduction_pct ~baseline v =
  if baseline <= 0.0 then 0.0 else 100.0 *. ((baseline -. v) /. baseline)
