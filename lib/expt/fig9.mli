(** Fig. 9 — per-event queuing delay under the three schedulers.

    One run of 30 heterogeneous events (utilisation fluctuating 50-70%,
    α = 4); the paper plots each event's queuing delay under FIFO, LMTF
    and P-LMTF, showing LMTF trimming most events and P-LMTF flattening
    the whole series. *)

type row = {
  event_id : int;
  fifo_q : float;
  lmtf_q : float;
  plmtf_q : float;
}

val compute : ?seed:int -> ?alpha:int -> ?n_events:int -> unit -> row list

val run : ?seed:int -> ?alpha:int -> unit -> unit
(** Print the per-event series and the delay CDF quantiles per policy. *)
