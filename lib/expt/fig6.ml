type point = {
  n_events : int;
  lmtf_cost_red : float;
  plmtf_cost_red : float;
  lmtf_avg_red : float;
  plmtf_avg_red : float;
  lmtf_tail_red : float;
  plmtf_tail_red : float;
  fifo_plan_s : float;
  lmtf_plan_s : float;
  plmtf_plan_s : float;
}

let default_counts = [ 10; 20; 30; 40; 50 ]

let compute ?(seeds = [ 42; 43; 44 ]) ?(alpha = Policy.default_alpha)
    ?(event_counts = default_counts) () =
  List.map
    (fun n_events ->
      let setup = { Workload.default_setup with Workload.n_events } in
      let results =
        Workload.averaged setup ~seeds
          [ Policy.Fifo; Policy.Lmtf { alpha }; Policy.Plmtf { alpha } ]
      in
      match results with
      | [ (_, fifo); (_, lmtf); (_, plmtf) ] ->
          let mean get = Workload.mean_of get in
          let cost s = s.Metrics.total_cost_mbit in
          let avg s = s.Metrics.avg_ect_s in
          let tail s = s.Metrics.tail_ect_s in
          let plan s = s.Metrics.total_plan_time_s in
          let red get better =
            Workload.reduction_pct ~baseline:(mean get fifo) (mean get better)
          in
          {
            n_events;
            lmtf_cost_red = red cost lmtf;
            plmtf_cost_red = red cost plmtf;
            lmtf_avg_red = red avg lmtf;
            plmtf_avg_red = red avg plmtf;
            lmtf_tail_red = red tail lmtf;
            plmtf_tail_red = red tail plmtf;
            fifo_plan_s = mean plan fifo;
            lmtf_plan_s = mean plan lmtf;
            plmtf_plan_s = mean plan plmtf;
          }
      | _ -> assert false)
    event_counts

let run ?seeds ?alpha () =
  let points = compute ?seeds ?alpha () in
  let table =
    Table.create
      ~title:
        "Fig.6: reductions vs FIFO and plan time (alpha=4, util fluctuating \
         under churn)"
      ~columns:
        [
          "events";
          "cost_red_lmtf%";
          "cost_red_plmtf%";
          "avg_red_lmtf%";
          "avg_red_plmtf%";
          "tail_red_lmtf%";
          "tail_red_plmtf%";
          "plan_fifo_s";
          "plan_lmtf_s";
          "plan_plmtf_s";
        ]
  in
  List.iter
    (fun p ->
      Table.add_floats table
        [
          float_of_int p.n_events;
          p.lmtf_cost_red;
          p.plmtf_cost_red;
          p.lmtf_avg_red;
          p.plmtf_avg_red;
          p.lmtf_tail_red;
          p.plmtf_tail_red;
          p.fifo_plan_s;
          p.lmtf_plan_s;
          p.plmtf_plan_s;
        ])
    points;
  Table.print table
