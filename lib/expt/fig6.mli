(** Fig. 6 — LMTF and P-LMTF against FIFO as the queue grows.

    The paper's headline comparison: for 10-50 queued events (10-100
    flows each, network utilisation fluctuating between 50% and 70%
    under background churn, α = 4) it reports, against FIFO,
    (a) total-update-cost reduction — P-LMTF stable at 34-45%,
    (b) average-ECT reduction — P-LMTF 69-80%, LMTF 22-36%,
    (c) tail-ECT reduction — P-LMTF 35-48%, LMTF 5-26%, and
    (d) total plan time — LMTF ~4.5x FIFO, P-LMTF ~2x. *)

type point = {
  n_events : int;
  lmtf_cost_red : float;  (** Percent reduction vs FIFO. *)
  plmtf_cost_red : float;
  lmtf_avg_red : float;
  plmtf_avg_red : float;
  lmtf_tail_red : float;
  plmtf_tail_red : float;
  fifo_plan_s : float;  (** Absolute plan times (Fig. 6d). *)
  lmtf_plan_s : float;
  plmtf_plan_s : float;
}

val compute :
  ?seeds:int list ->
  ?alpha:int ->
  ?event_counts:int list ->
  unit ->
  point list
(** Defaults: seeds [42; 43; 44], α = 4, event counts 10 to 50 by 10.
    Utilisation setpoint 0.7 with churn (it fluctuates below between
    refills, the paper's 50-70% band). *)

val run : ?seeds:int list -> ?alpha:int -> unit -> unit
