(** Ablations for the design choices DESIGN.md §7 calls out.

    Not in the paper's figures, but each isolates a knob the paper fixes
    implicitly: the sample size α (the paper asserts α = 2 already works,
    citing the power of two choices), the greedy order inside the
    migration-set approximation, the admission mode (desired-path-first
    vs scan-first), and the path-selection policy. *)

val alpha_sweep : ?seeds:int list -> ?alphas:int list -> unit -> unit
(** LMTF and P-LMTF average/tail ECT reduction vs FIFO as α sweeps
    (default 1, 2, 4, 8) — 30 events, churn on. *)

val migration_order : ?seed:int -> unit -> unit
(** For one planning pass over 30 events: Cost(U), move count and plan
    units under each {!Migration.order}. *)

val admission_mode : ?seed:int -> unit -> unit
(** Desired-first vs scan-first planning: cost and failure profile. *)

val routing_policy : ?seed:int -> unit -> unit
(** First-fit / widest / least-loaded / random-fit relocation targets:
    cost and plan-unit profile over one planning pass. *)

val reorder_overhead : ?seeds:int list -> unit -> unit
(** The "intrinsic" full-reordering baseline vs LMTF vs FIFO: ECT/cost
    reductions and the plan-time blow-up the paper's §III-C predicts. *)

val co_fit_vs_utilization : ?seed:int -> ?utilizations:float list -> unit -> unit
(** P-LMTF's opportunistic-fit acceptance as static utilisation grows —
    the mechanism behind EXPERIMENTS.md note 6 (reductions decay because
    nothing fits alongside the head at 90% load). *)

val run_all : unit -> unit
