let alpha_sweep ?(seeds = [ 42; 43 ]) ?(alphas = [ 1; 2; 4; 8 ]) () =
  let setup = Workload.default_setup in
  let table =
    Table.create
      ~title:"Ablation: sample size alpha (30 events, churn, vs FIFO)"
      ~columns:
        [
          "alpha";
          "lmtf_avg_red%";
          "lmtf_tail_red%";
          "plmtf_avg_red%";
          "plmtf_tail_red%";
          "plmtf_planx";
        ]
  in
  List.iter
    (fun alpha ->
      let results =
        Workload.averaged setup ~seeds
          [ Policy.Fifo; Policy.Lmtf { alpha }; Policy.Plmtf { alpha } ]
      in
      match results with
      | [ (_, fifo); (_, lmtf); (_, plmtf) ] ->
          let mean = Workload.mean_of in
          let avg s = s.Metrics.avg_ect_s and tail s = s.Metrics.tail_ect_s in
          let plan s = s.Metrics.total_plan_time_s in
          let red get better =
            Workload.reduction_pct ~baseline:(mean get fifo) (mean get better)
          in
          Table.add_floats table
            [
              float_of_int alpha;
              red avg lmtf;
              red tail lmtf;
              red avg plmtf;
              red tail plmtf;
              mean plan plmtf /. mean plan fifo;
            ]
      | _ -> assert false)
    alphas;
  Table.print table

(* One sequential planning pass (FIFO order, no engine) under a given
   planner configuration; reports aggregate cost/move/unit counts. *)
let planning_pass ~seed config =
  let scenario = Scenario.prepare ~utilization:0.70 ~seed () in
  let events = Scenario.events scenario ~n:30 in
  let net = Net_state.copy scenario.Scenario.net in
  List.fold_left
    (fun (cost, moves, failed, units) ev ->
      let plan = Planner.plan ~config net ev in
      ( cost +. plan.Planner.cost_mbit,
        moves + plan.Planner.move_count,
        failed + plan.Planner.failed_count,
        units + plan.Planner.work_units ))
    (0.0, 0, 0, 0) events

let migration_order ?(seed = 42) () =
  let table =
    Table.create
      ~title:"Ablation: migration-set greedy order (30 events, one pass)"
      ~columns:[ "order"; "cost_mbit"; "moves"; "failed"; "plan_units" ]
  in
  List.iter
    (fun order ->
      let cost, moves, failed, units =
        planning_pass ~seed { Planner.default_config with Planner.order }
      in
      Table.add_mixed table
        (Migration.order_name order)
        [ cost; float_of_int moves; float_of_int failed; float_of_int units ])
    Migration.all_orders;
  Table.print table

let admission_mode ?(seed = 42) () =
  let table =
    Table.create
      ~title:"Ablation: admission mode (30 events, one pass)"
      ~columns:[ "admission"; "cost_mbit"; "moves"; "failed"; "plan_units" ]
  in
  List.iter
    (fun admission ->
      let cost, moves, failed, units =
        planning_pass ~seed { Planner.default_config with Planner.admission }
      in
      Table.add_mixed table
        (Planner.admission_name admission)
        [ cost; float_of_int moves; float_of_int failed; float_of_int units ])
    [ Planner.Desired_first; Planner.Scan_first ];
  Table.print table

let routing_policy ?(seed = 42) () =
  let table =
    Table.create
      ~title:"Ablation: relocation path policy (30 events, one pass)"
      ~columns:[ "policy"; "cost_mbit"; "moves"; "failed"; "plan_units" ]
  in
  List.iter
    (fun policy ->
      match policy with
      | Routing.Random_fit ->
          (* Random_fit needs an rng threaded through Planner.plan; the
             deterministic pass would not isolate the policy effect, so
             it is exercised in the engine tests instead. *)
          ()
      | _ ->
          let cost, moves, failed, units =
            planning_pass ~seed { Planner.default_config with Planner.policy }
          in
          Table.add_mixed table
            (Routing.policy_name policy)
            [
              cost; float_of_int moves; float_of_int failed; float_of_int units;
            ])
    Routing.all_policies;
  Table.print table

let reorder_overhead ?(seeds = [ 42; 43 ]) () =
  (* The paper's §III-C/IV argument: recomputing every queued event's
     cost each round ("the intrinsic method") buys little over LMTF's
     alpha+1 samples while paying for |queue| estimates per round. *)
  let setup = Workload.default_setup in
  let table =
    Table.create
      ~title:
        "Ablation: full reordering vs sampling (30 events, churn, vs FIFO)"
      ~columns:
        [ "policy"; "avg_red%"; "tail_red%"; "cost_red%"; "plan_x_fifo" ]
  in
  let results =
    Workload.averaged setup ~seeds
      [
        Policy.Fifo;
        Policy.Lmtf { alpha = Policy.default_alpha };
        Policy.Reorder;
      ]
  in
  (match results with
  | [ (_, fifo); (_, lmtf); (_, reorder) ] ->
      let mean = Workload.mean_of in
      let avg s = s.Metrics.avg_ect_s
      and tail s = s.Metrics.tail_ect_s
      and cost s = s.Metrics.total_cost_mbit
      and plan s = s.Metrics.total_plan_time_s in
      let row name summaries =
        Table.add_mixed table name
          [
            Workload.reduction_pct ~baseline:(mean avg fifo) (mean avg summaries);
            Workload.reduction_pct ~baseline:(mean tail fifo) (mean tail summaries);
            Workload.reduction_pct ~baseline:(mean cost fifo) (mean cost summaries);
            mean plan summaries /. mean plan fifo;
          ]
      in
      row "lmtf(a=4)" lmtf;
      row "reorder" reorder
  | _ -> assert false);
  Table.print table

let co_fit_vs_utilization ?(seed = 42)
    ?(utilizations = [ 0.6; 0.7; 0.8; 0.9 ]) () =
  (* EXPERIMENTS.md note 6: opportunistic updating is a residual-capacity
     fit check, so its acceptance rate — and with it P-LMTF's edge over
     FIFO — decays as static utilisation grows. Sweeping the co-migration
     budget changes nothing (co-plans are either free or unsatisfiable),
     so the sweep is over utilisation itself. 20 events, static
     background. *)
  let table =
    Table.create
      ~title:
        "Ablation: P-LMTF opportunistic fit vs utilisation (20 events, \
         static background)"
      ~columns:
        [ "util"; "avg_red%"; "tail_red%"; "co_events"; "failed_items" ]
  in
  List.iter
    (fun utilization ->
      let scenario = Scenario.prepare ~utilization ~seed () in
      let events = Scenario.events scenario ~n:20 in
      let run policy =
        Metrics.of_run
          (Engine.run ~seed:(seed + 1)
             ~net:(Net_state.copy scenario.Scenario.net)
             ~events policy)
      in
      let fifo = run Policy.Fifo in
      let plmtf = run (Policy.Plmtf { alpha = Policy.default_alpha }) in
      Table.add_floats table
        [
          utilization;
          Workload.reduction_pct ~baseline:fifo.Metrics.avg_ect_s
            plmtf.Metrics.avg_ect_s;
          Workload.reduction_pct ~baseline:fifo.Metrics.tail_ect_s
            plmtf.Metrics.tail_ect_s;
          float_of_int plmtf.Metrics.co_scheduled_events;
          float_of_int plmtf.Metrics.failed_items;
        ])
    utilizations;
  Table.print table

let run_all () =
  alpha_sweep ();
  migration_order ();
  admission_mode ();
  routing_policy ();
  reorder_overhead ();
  co_fit_vs_utilization ()
