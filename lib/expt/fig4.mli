(** Fig. 4 — flow-level vs event-level scheduling as events grow.

    10 update events at ~70% network utilisation; the mean number of
    flows per event sweeps 15 to 75 (each event draws uniformly within
    +/- 5 of the mean). The paper reports average and tail ECT
    normalised by the flow-level method's maximum; event-level is up to
    ~10x faster on average and ~6x on the tail. Event-level here is the
    grouped FIFO service; flow-level is the round-robin flow queue. *)

type point = {
  mean_flows : int;
  flow_avg_ect : float;  (** Seconds (raw). *)
  flow_tail_ect : float;
  event_avg_ect : float;
  event_tail_ect : float;
}

val compute :
  ?seeds:int list -> ?n_events:int -> ?means:int list -> unit -> point list
(** Defaults: seeds [42; 43], 10 events, means 15 to 75 by 10. *)

val run : ?seeds:int list -> unit -> unit
(** Print raw seconds, the normalised series (divided by the flow-level
    maximum, as in the paper) and the per-point speedups. *)
