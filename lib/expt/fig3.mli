(** Fig. 3 — FIFO vs cost-ordered execution (worked example).

    Three update events with execution time 1 s each; U1 needs 4 s of
    migration work, U2 and U3 need 1 s each. FIFO completes them at
    5, 7, 9 s (average 7); running the low-cost events first completes
    them at 2, 4, 9 s (average 5) with the same tail — the arithmetic
    motivating LMTF. *)

type event = { name : string; cost_s : float; exec_s : float }

val paper_events : event list
(** U1 (cost 4), U2 (cost 1), U3 (cost 1); 1 s execution each. *)

val completions : event list -> (string * float) list
(** Sequential service in the given order: each event takes
    [cost_s + exec_s]; returns completion instants. *)

val average : (string * float) list -> float
val tail : (string * float) list -> float

val run : unit -> unit
(** Print the FIFO and cost-ordered schedules; asserts the paper's 7 s
    vs 5 s averages. *)
