type row = { event_id : int; fifo_q : float; lmtf_q : float; plmtf_q : float }

(* Fig. 9 needs per-event values, not summaries, so it drives the engine
   directly rather than through Workload. *)
let compute ?(seed = 42) ?(alpha = Policy.default_alpha) ?(n_events = 30) () =
  let scenario = Scenario.prepare ~utilization:0.70 ~seed () in
  let events = Scenario.events scenario ~n:n_events in
  let run_policy policy =
    let churn = Scenario.churn ~target:0.70 ~seed:(seed + 2) scenario in
    Engine.run ~churn ~seed:(seed + 1)
      ~net:(Net_state.copy scenario.Scenario.net)
      ~events policy
  in
  let fifo = run_policy Policy.Fifo in
  let lmtf = run_policy (Policy.Lmtf { alpha }) in
  let plmtf = run_policy (Policy.Plmtf { alpha }) in
  let q (run : Engine.run_result) i = Engine.queuing_delay run.Engine.events.(i) in
  List.init n_events (fun i ->
      {
        event_id = i;
        fifo_q = q fifo i;
        lmtf_q = q lmtf i;
        plmtf_q = q plmtf i;
      })

let run ?seed ?alpha () =
  let rows = compute ?seed ?alpha () in
  let table =
    Table.create
      ~title:
        "Fig.9: per-event queuing delay, 30 events (util fluctuating, \
         alpha=4)"
      ~columns:[ "event"; "fifo_q_s"; "lmtf_q_s"; "plmtf_q_s" ]
  in
  List.iter
    (fun r ->
      Table.add_floats table
        [ float_of_int r.event_id; r.fifo_q; r.lmtf_q; r.plmtf_q ])
    rows;
  Table.print table;
  let cdf sel = Cdf.of_samples (Array.of_list (List.map sel rows)) in
  Format.printf "  fifo   %a@." Cdf.pp (cdf (fun r -> r.fifo_q));
  Format.printf "  lmtf   %a@." Cdf.pp (cdf (fun r -> r.lmtf_q));
  Format.printf "  p-lmtf %a@." Cdf.pp (cdf (fun r -> r.plmtf_q))
