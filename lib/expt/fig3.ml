type event = { name : string; cost_s : float; exec_s : float }

let paper_events =
  [
    { name = "U1"; cost_s = 4.0; exec_s = 1.0 };
    { name = "U2"; cost_s = 1.0; exec_s = 1.0 };
    { name = "U3"; cost_s = 1.0; exec_s = 1.0 };
  ]

let completions events =
  let _, acc =
    List.fold_left
      (fun (t, acc) ev ->
        let t = t +. ev.cost_s +. ev.exec_s in
        (t, (ev.name, t) :: acc))
      (0.0, []) events
  in
  List.rev acc

let average cs =
  match cs with
  | [] -> invalid_arg "Fig3.average: empty"
  | _ ->
      List.fold_left (fun a (_, t) -> a +. t) 0.0 cs
      /. float_of_int (List.length cs)

let tail cs = List.fold_left (fun a (_, t) -> max a t) 0.0 cs

let pp label cs =
  Printf.printf "  %-12s %s  avg ECT = %.1f s  tail ECT = %.1f s\n" label
    (String.concat "  "
       (List.map (fun (n, t) -> Printf.sprintf "%s@%.0fs" n t) cs))
    (average cs) (tail cs)

let run () =
  print_endline "## Fig.3: LMTF-style reordering vs FIFO (worked example)";
  let fifo = completions paper_events in
  let by_cost =
    completions
      (List.stable_sort (fun a b -> compare a.cost_s b.cost_s) paper_events)
  in
  pp "fifo" fifo;
  pp "cost-order" by_cost;
  assert (abs_float (average fifo -. 7.0) < 1e-9);
  assert (abs_float (average by_cost -. 5.0) < 1e-9);
  assert (tail fifo = tail by_cost);
  Printf.printf
    "  reordering reduces the average ECT from %.1f to %.1f with an equal \
     tail\n"
    (average fifo) (average by_cost);
  flush stdout
