(** Fig. 5 — flow-level vs event-level scheduling as the queue grows.

    The number of queued update events sweeps 10 to 50 (each with 10-100
    flows, utilisation 70%); both methods' average and tail ECTs rise
    with queue length, the flow-level method much faster — the paper
    reports ~5x (average) and ~2x (tail) gaps on average. *)

type point = {
  n_events : int;
  flow_avg_ect : float;
  flow_tail_ect : float;
  event_avg_ect : float;
  event_tail_ect : float;
}

val compute :
  ?seeds:int list -> ?event_counts:int list -> unit -> point list
(** Defaults: seeds [42; 43], event counts 10 to 50 by 10. *)

val run : ?seeds:int list -> unit -> unit
