(** Seeded chaos harness: a policy run under a generated fault schedule.

    Prepares the standard scenario, draws a deterministic fault schedule
    from [fault_seed] ({!Core.Fault_model.generate}), attaches an
    injector to {!Core.Engine.run} and reports what the recovery
    machinery did: aborts, retries, degradations, evacuations and — the
    pass/fail signal — invariant violations. Two runs with equal
    parameters produce bit-identical recovery digests; CI's chaos-smoke
    job runs this and fails on any violation. *)

type params = {
  seed : int;  (** Scenario/workload seed. *)
  fault_seed : int;  (** Fault-schedule seed. *)
  fault_rate : float;  (** Primary faults per simulated second. *)
  retry_max : int;  (** Abort attempts before degradation. *)
  utilization : float;
  n_events : int;
  alpha : int;  (** P-LMTF sample size. *)
}

val default_params : params
(** seed 42, fault_seed 7, rate 0.2/s, 3 retries, 70% utilisation,
    30 events, alpha 4. *)

type result = {
  params : params;
  schedule_length : int;
  run : Core.Engine.run_result;
  recovery : Core.Recovery.t;
  violations : int;
  digest : string;  (** {!Core.Recovery.digest} of the recovery log. *)
}

val run : ?params:params -> ?policy:Core.Policy.t -> unit -> result
(** One chaos run (default policy: P-LMTF with [params.alpha]). *)

val result_to_json : result -> Core.Obs.Json.t
(** The recovery-digest artifact: parameters, schedule length, recovery
    stats + digest, and the run's headline metrics. *)

val print : result -> unit
(** Human summary on stdout. *)
