type point = {
  mean_interarrival_s : float;
  fifo_avg_ect : float;
  lmtf_avg_ect : float;
  plmtf_avg_ect : float;
  fifo_avg_q : float;
  lmtf_avg_q : float;
  plmtf_avg_q : float;
}

let default_interarrivals = [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

let compute ?(seed = 42) ?(alpha = Policy.default_alpha) ?(n_events = 40)
    ?(interarrivals = default_interarrivals) () =
  let scenario = Scenario.prepare ~utilization:0.70 ~seed () in
  List.map
    (fun mean_interarrival_s ->
      let events =
        Scenario.events
          ~arrivals:(Event_gen.Poisson mean_interarrival_s)
          scenario ~n:n_events
      in
      let summary policy =
        let churn = Scenario.churn ~target:0.70 ~seed:(seed + 2) scenario in
        Metrics.of_run
          (Engine.run ~churn ~seed:(seed + 1)
             ~net:(Net_state.copy scenario.Scenario.net)
             ~events policy)
      in
      let fifo = summary Policy.Fifo in
      let lmtf = summary (Policy.Lmtf { alpha }) in
      let plmtf = summary (Policy.Plmtf { alpha }) in
      {
        mean_interarrival_s;
        fifo_avg_ect = fifo.Metrics.avg_ect_s;
        lmtf_avg_ect = lmtf.Metrics.avg_ect_s;
        plmtf_avg_ect = plmtf.Metrics.avg_ect_s;
        fifo_avg_q = fifo.Metrics.avg_queuing_s;
        lmtf_avg_q = lmtf.Metrics.avg_queuing_s;
        plmtf_avg_q = plmtf.Metrics.avg_queuing_s;
      })
    interarrivals

let run ?seed ?alpha () =
  let points = compute ?seed ?alpha () in
  let table =
    Table.create
      ~title:
        "Extension: Poisson event arrivals (40 events, util 70%) — avg ECT \
         and queuing delay vs offered load"
      ~columns:
        [
          "interarrival_s";
          "fifo_avgECT";
          "lmtf_avgECT";
          "plmtf_avgECT";
          "fifo_avgQ";
          "lmtf_avgQ";
          "plmtf_avgQ";
        ]
  in
  List.iter
    (fun p ->
      Table.add_floats table
        [
          p.mean_interarrival_s;
          p.fifo_avg_ect;
          p.lmtf_avg_ect;
          p.plmtf_avg_ect;
          p.fifo_avg_q;
          p.lmtf_avg_q;
          p.plmtf_avg_q;
        ])
    points;
  Table.print table
