(** Fig. 1 — success probability of accommodating a flow without
    migration, versus link utilisation.

    The paper plots, for a k=8 Fat-Tree under (a) the Yahoo! trace and
    (b) the random (Benson) trace, the probability that a new flow of an
    update event can be inserted directly — no existing flow migrated —
    as utilisation rises; the probability falls regardless of flow size.
    We report two definitions per size class: the desired (ECMP-hashed)
    path being free, and any candidate path being free. *)

type point = {
  trace : string;
  utilization : float;  (** Fabric-utilisation setpoint of the fill. *)
  p_desired_small : float;  (** Desired path free; demand < 10 Mbps. *)
  p_desired_mid : float;  (** 10-50 Mbps. *)
  p_desired_large : float;  (** > 50 Mbps. *)
  p_desired_all : float;
  p_any_all : float;  (** Some candidate path free, any size. *)
}

val compute : ?seed:int -> ?samples:int -> ?utilizations:float list -> unit ->
  point list
(** Default: 400 probe flows per point, utilisations 0.1 to 0.9. *)

val run : ?seed:int -> ?samples:int -> unit -> unit
(** Compute and print the table. *)
