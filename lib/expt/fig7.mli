(** Fig. 7 — P-LMTF vs FIFO across event types and utilisation.

    30 queued events, α = 4, *static* background (the paper keeps
    background traffic fixed for this experiment), utilisation sweeping
    50% to 90%. Two event populations: heterogeneous (10-100 flows per
    event) and synchronous (50-60 flows). The paper reports 60-70%
    (heterogeneous) and 40-50% (synchronous) average-ECT reductions, and
    40-60% / 30-50% tail reductions, roughly flat in utilisation. *)

type point = {
  utilization : float;
  het_avg_red : float;  (** Percent reduction vs FIFO, heterogeneous. *)
  het_tail_red : float;
  sync_avg_red : float;  (** Synchronous events (50-60 flows). *)
  sync_tail_red : float;
}

val compute :
  ?seeds:int list ->
  ?alpha:int ->
  ?n_events:int ->
  ?utilizations:float list ->
  unit ->
  point list
(** Defaults: seeds [42; 43], α = 4, 30 events, utilisations 0.5-0.9. *)

val run : ?seeds:int list -> ?alpha:int -> unit -> unit
