type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reverse order *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- cells :: t.rows

let fmt_float v = Printf.sprintf "%.4g" v
let add_floats t values = add_row t (List.map fmt_float values)
let add_mixed t label values = add_row t (label :: List.map fmt_float values)

let to_string t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let widths =
    List.fold_left
      (fun widths row ->
        List.map2 (fun w cell -> max w (String.length cell)) widths row)
      (List.map (fun _ -> 0) t.columns)
      all
  in
  let render_row prefix row =
    let cells =
      List.map2
        (fun w cell -> cell ^ String.make (w - String.length cell) ' ')
        widths row
    in
    prefix ^ String.concat "  " cells
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("## " ^ t.title ^ "\n");
  Buffer.add_string buf (render_row "# " t.columns ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row "  " row ^ "\n")) rows;
  Buffer.contents buf

let print t =
  print_string (to_string t);
  flush stdout
