(** Shared plumbing for the figure regenerators.

    Each experiment needs the same skeleton: a loaded Fat-Tree at some
    utilisation, a queue of generated update events, a set of policies
    to compare on byte-identical initial states, and replication across
    seeds. This module owns that skeleton; the [FigN] modules only
    declare their sweeps. *)

type setup = {
  utilization : float;  (** Background fabric-utilisation target. *)
  n_events : int;
  shape : Event_gen.shape;
  seed : int;
  churn : bool;  (** Dynamic background (Fig. 6/8/9) or static (Fig. 7). *)
  exec : Exec_model.t;
}

val default_setup : setup
(** 70% utilisation, 30 heterogeneous events, seed 42, churn on,
    default execution model. *)

val run_policies : setup -> Policy.t list -> Metrics.summary list
(** Prepare one scenario, then run every policy from a copy of the same
    prepared state and identical sampling seed. Order follows the input
    list. *)

val averaged :
  setup -> seeds:int list -> Policy.t list ->
  (Policy.t * Metrics.summary list) list
(** Replicate {!run_policies} across seeds; returns, per policy, the
    per-seed summaries (callers aggregate whichever field they plot). *)

val mean_of : ('a -> float) -> 'a list -> float
(** Average a field over replicate summaries. *)

val reduction_pct : baseline:float -> float -> float
(** Percent reduction vs baseline. *)
