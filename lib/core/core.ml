(** Event-level network update: public facade.

    One-stop module re-exporting the whole stack. Downstream users can
    depend on [core] alone and reach every layer:

    {ul
    {- randomness and statistics: {!Prng}, {!Dist}, {!Descriptive}, {!Cdf};}
    {- network graph: {!Graph}, {!Path}, {!Bfs}, {!Dijkstra}, {!Yen},
       {!Pqueue};}
    {- fabrics: {!Topology}, {!Fat_tree}, {!Leaf_spine};}
    {- traffic: {!Flow_record}, {!Ip_map}, {!Yahoo_trace}, {!Benson_trace},
       {!Event_gen};}
    {- network state: {!Net_state}, {!Routing}, {!Background};}
    {- the paper's contribution: {!Event}, {!Migration}, {!Planner},
       {!Ordering};}
    {- consistent-update dataplane: {!Rule}, {!Switch_table}, {!Fabric},
       {!Two_phase};}
    {- inter-event scheduling: {!Policy}, {!Exec_model}, {!Engine},
       {!Metrics};}
    {- online serving: {!Serve}, {!Admission}, {!Journal},
       {!Serve_source}, {!Serve_checkpoint};}
    {- sharded multi-controller serving: {!Shard_partition},
       {!Shard_coord}, {!Shard_fabric}.}}

    The typical flow is {!Scenario.prepare} (build a loaded Fat-Tree),
    {!Scenario.events} (a workload), {!Engine.run} (simulate a policy),
    {!Metrics.of_run} (report). *)

module Prng = Nu_stats.Prng
module Dist = Nu_stats.Dist
module Descriptive = Nu_stats.Descriptive
module Cdf = Nu_stats.Cdf
module Graph = Nu_graph.Graph
module Path = Nu_graph.Path
module Bfs = Nu_graph.Bfs
module Dijkstra = Nu_graph.Dijkstra
module Yen = Nu_graph.Yen
module Pqueue = Nu_graph.Pqueue
module Topology = Nu_topo.Topology
module Fat_tree = Nu_topo.Fat_tree
module Leaf_spine = Nu_topo.Leaf_spine
module Jellyfish = Nu_topo.Jellyfish
module Flow_record = Nu_traffic.Flow_record
module Ip_map = Nu_traffic.Ip_map
module Yahoo_trace = Nu_traffic.Yahoo_trace
module Benson_trace = Nu_traffic.Benson_trace
module Event_gen = Nu_traffic.Event_gen
module Net_state = Nu_net.Net_state
module Routing = Nu_net.Routing
module Background = Nu_net.Background
module Event = Nu_update.Event
module Migration = Nu_update.Migration
module Planner = Nu_update.Planner
module Ordering = Nu_update.Ordering
module Rule = Nu_dataplane.Rule
module Switch_table = Nu_dataplane.Switch_table
module Fabric = Nu_dataplane.Fabric
module Two_phase = Nu_dataplane.Two_phase
module Fault_model = Nu_fault.Fault_model
module Retry_policy = Nu_fault.Retry_policy
module Injector = Nu_fault.Injector
module Invariant = Nu_fault.Invariant
module Recovery = Nu_fault.Recovery
module Store_fault = Nu_fault.Store_fault
module Policy = Nu_sched.Policy
module Exec_model = Nu_sched.Exec_model
module Engine = Nu_sched.Engine
module Estimate_cache = Nu_sched.Estimate_cache
module Probe_pool = Nu_sched.Probe_pool
module Metrics = Nu_sched.Metrics
module Run_digest = Nu_sched.Run_digest
module Run_report = Nu_sched.Run_report
module Serve = Nu_serve.Serve
module Serve_request = Nu_serve.Request
module Admission = Nu_serve.Admission
module Journal = Nu_serve.Journal
module Serve_source = Nu_serve.Source
module Serve_checkpoint = Nu_serve.Checkpoint
module Serve_codec = Nu_serve.Codec
module Serve_telemetry = Nu_serve.Telemetry
module Supervisor = Nu_serve.Supervisor
module Shard_partition = Nu_shard.Partition
module Shard_coord = Nu_shard.Coord
module Shard_fabric = Nu_shard.Shard_fabric
module Obs = Nu_obs

(** Canned experiment scenarios: a loaded Fat-Tree plus generator
    plumbing, so quickstarts and benches need three calls, not thirty. *)
module Scenario = struct
  type t = {
    fat_tree : Fat_tree.t;
    topology : Topology.t;
    net : Net_state.t;  (** Loaded with background traffic. *)
    rng : Prng.t;  (** Stream for workload generation. *)
    host_count : int;
    background_report : Background.report;
  }

  (* Host access links are capped during the fill so that update events
     contend on the fabric, where migration can actually help (an access
     link is every candidate path's first or last hop, so nothing can be
     migrated off it). The cap scales with the fabric target: high-
     utilisation sweeps (Fig. 7 goes to 90%) need access headroom too. *)
  let access_cap_for utilization = min 0.95 (max 0.75 (utilization +. 0.15))

  let accept_under_access_cap ~cap topo net (r : Flow_record.t) path =
    let d = Flow_record.demand_mbps r in
    List.for_all
      (fun (e : Graph.edge) ->
        let touches_host =
          Topology.is_host topo e.Graph.src || Topology.is_host topo e.Graph.dst
        in
        (not touches_host)
        || (Net_state.used net e.Graph.id +. d) /. e.Graph.capacity <= cap)
      (Path.edges path)

  type background = Yahoo | Benson

  let prepare ?(k = 8) ?(utilization = 0.70) ?(seed = 42)
      ?(background = Yahoo) () =
    let fat_tree = Fat_tree.create ~k () in
    let topology = Fat_tree.to_topology fat_tree in
    let net = Net_state.create topology in
    let rng = Prng.create seed in
    let host_count = Topology.host_count topology in
    let fill_rng = Prng.split rng in
    let make_flow =
      match background with
      | Yahoo ->
          fun ~id ~scale ->
            Background.yahoo_flow_maker fill_rng ~host_count ~id ~scale
      | Benson ->
          fun ~id ~scale ->
            Background.benson_flow_maker fill_rng ~host_count ~id ~scale
    in
    let background_report =
      (* Random-fit placement mimics hash-based ECMP spreading; first-fit
         would concentrate the whole load on the first candidate paths
         and saturate a few links even at low mean utilisation. *)
      Background.fill net ~target:utilization
        ~policy:Routing.Random_fit ~rng:fill_rng
        ~utilization:Net_state.mean_fabric_utilization
        ~accept:
          (accept_under_access_cap ~cap:(access_cap_for utilization) topology)
        ~make_flow ~first_id:0
    in
    { fat_tree; topology; net; rng; host_count; background_report }

  (* Update-event flows follow the paper's §V-A: Benson characteristics,
     with elephants capped so single flows stay below uncleared access
     headroom. *)
  let event_flow_params =
    {
      Benson_trace.default_params with
      Benson_trace.elephant_demand_hi_mbps = 100.0;
    }

  let events ?(shape = Event_gen.Heterogeneous) ?(arrivals = Event_gen.Batch)
      t ~n =
    Event_gen.generate ~shape ~arrivals ~flow_params:event_flow_params
      ~first_flow_id:1_000_000 t.rng ~host_count:t.host_count ~n_events:n
    |> Event.of_specs

  (* Background churn regenerates Yahoo!-style flows; ids live far above
     both background and event flows. The stream is seeded explicitly
     (not split from the scenario rng) so different policies compared on
     copies of one scenario see the *same* churn process. *)
  let churn ?(target = 0.70) ?(seed = 4242) t =
    let churn_rng = Prng.create seed in
    {
      Engine.make_flow =
        (fun ~id ->
          (Yahoo_trace.generate ~first_id:id churn_rng ~host_count:t.host_count
             ~n:1).(0));
      target_utilization = target;
      max_placements_per_round = 200;
      first_id = 10_000_000;
    }
end
