(** Event-level network update: public facade.

    One-stop module re-exporting the whole stack. Downstream users can
    depend on [core] alone and reach every layer:

    {ul
    {- randomness and statistics: {!Prng}, {!Dist}, {!Descriptive}, {!Cdf};}
    {- network graph: {!Graph}, {!Path}, {!Bfs}, {!Dijkstra}, {!Yen},
       {!Pqueue};}
    {- fabrics: {!Topology}, {!Fat_tree}, {!Leaf_spine};}
    {- traffic: {!Flow_record}, {!Ip_map}, {!Yahoo_trace}, {!Benson_trace},
       {!Event_gen};}
    {- network state: {!Net_state}, {!Routing}, {!Background};}
    {- the paper's contribution: {!Event}, {!Migration}, {!Planner},
       {!Ordering};}
    {- consistent-update dataplane: {!Rule}, {!Switch_table}, {!Fabric},
       {!Two_phase};}
    {- fault injection and recovery: {!Fault_model}, {!Retry_policy},
       {!Injector}, {!Invariant}, {!Recovery};}
    {- inter-event scheduling: {!Policy}, {!Exec_model}, {!Engine},
       {!Metrics};}
    {- online serving: {!Serve}, {!Admission}, {!Journal},
       {!Serve_source}, {!Serve_checkpoint};}
    {- sharded multi-controller serving: {!Shard_partition},
       {!Shard_coord}, {!Shard_fabric}.}}

    The typical flow is {!Scenario.prepare} (build a loaded Fat-Tree),
    {!Scenario.events} (a workload), {!Engine.run} (simulate a policy),
    {!Metrics.of_run} (report). *)

module Prng = Nu_stats.Prng
module Dist = Nu_stats.Dist
module Descriptive = Nu_stats.Descriptive
module Cdf = Nu_stats.Cdf
module Graph = Nu_graph.Graph
module Path = Nu_graph.Path
module Bfs = Nu_graph.Bfs
module Dijkstra = Nu_graph.Dijkstra
module Yen = Nu_graph.Yen
module Pqueue = Nu_graph.Pqueue
module Topology = Nu_topo.Topology
module Fat_tree = Nu_topo.Fat_tree
module Leaf_spine = Nu_topo.Leaf_spine
module Jellyfish = Nu_topo.Jellyfish
module Flow_record = Nu_traffic.Flow_record
module Ip_map = Nu_traffic.Ip_map
module Yahoo_trace = Nu_traffic.Yahoo_trace
module Benson_trace = Nu_traffic.Benson_trace
module Event_gen = Nu_traffic.Event_gen
module Net_state = Nu_net.Net_state
module Routing = Nu_net.Routing
module Background = Nu_net.Background
module Event = Nu_update.Event
module Migration = Nu_update.Migration
module Planner = Nu_update.Planner
module Ordering = Nu_update.Ordering
module Rule = Nu_dataplane.Rule
module Switch_table = Nu_dataplane.Switch_table
module Fabric = Nu_dataplane.Fabric
module Two_phase = Nu_dataplane.Two_phase
module Fault_model = Nu_fault.Fault_model
module Retry_policy = Nu_fault.Retry_policy
module Injector = Nu_fault.Injector
module Invariant = Nu_fault.Invariant
module Recovery = Nu_fault.Recovery

module Store_fault = Nu_fault.Store_fault
(** Deterministic storage-fault injection (torn writes, bit flips,
    short reads, ENOSPC, fsync loss, kills) for the durable serving
    store. *)

module Policy = Nu_sched.Policy
module Exec_model = Nu_sched.Exec_model
module Engine = Nu_sched.Engine
module Estimate_cache = Nu_sched.Estimate_cache
module Probe_pool = Nu_sched.Probe_pool
module Metrics = Nu_sched.Metrics
module Run_report = Nu_sched.Run_report
module Run_digest = Nu_sched.Run_digest

module Serve = Nu_serve.Serve
(** Online serving: the batch engine as a long-running controller with
    admission control, durable checkpoints and deterministic replay. *)

module Serve_request = Nu_serve.Request
module Admission = Nu_serve.Admission
module Journal = Nu_serve.Journal
module Serve_source = Nu_serve.Source
module Serve_checkpoint = Nu_serve.Checkpoint
module Serve_codec = Nu_serve.Codec

module Serve_telemetry = Nu_serve.Telemetry
(** Live serving telemetry: request lifecycle stamps, per-tenant
    fairness/SLO tracking and OpenMetrics exposition. *)

module Supervisor = Nu_serve.Supervisor
(** Bounded-restart supervision of the serving loop: checkpoint-chain
    fallback, tolerant journal replay, classified failures, recovery
    log digest. *)

module Shard_partition = Nu_shard.Partition
(** Deterministic region-keyed partition map: which shard controller
    owns which slice of the fabric. *)

module Shard_coord = Nu_shard.Coord
(** Global coordinator two-phase-committing cross-shard migration
    sets against the shared fabric. *)

module Shard_fabric = Nu_shard.Shard_fabric
(** Sharded multi-controller serving: N planners over one fabric,
    synchronised waves, weighted-fair drain, crash recovery. *)

module Obs = Nu_obs
(** Observability: {!Nu_obs.Trace} spans, {!Nu_obs.Counters},
    {!Nu_obs.Export} (JSONL / Chrome-trace) and the {!Nu_obs.Json}
    codec. *)

(** Canned experiment scenarios: a loaded Fat-Tree plus generator
    plumbing, so quickstarts and benches need three calls, not thirty. *)
module Scenario : sig
  type t = {
    fat_tree : Fat_tree.t;
    topology : Topology.t;
    net : Net_state.t;  (** Loaded with background traffic. *)
    rng : Prng.t;  (** Stream for workload generation. *)
    host_count : int;
    background_report : Background.report;
  }

  val access_cap_for : float -> float
  (** Host-access-link utilisation cap used during the background fill
      for a given fabric target: min(0.95, max(0.75, target + 0.15)).
      Access links are on every candidate path of their host, so
      congestion there cannot be fixed by migration; capping keeps the
      update contention on the fabric (DESIGN.md §3). *)

  type background = Yahoo | Benson
  (** Which synthetic trace fills the background (paper Fig. 1 uses
      both). *)

  val prepare :
    ?k:int ->
    ?utilization:float ->
    ?seed:int ->
    ?background:background ->
    unit ->
    t
  (** Build a k-ary Fat-Tree (default 8, the paper's setting), fill it
      with background traffic to the fabric-utilisation target (default
      0.70) using random-fit (ECMP-like) spreading under the access cap.
      Fully deterministic in [seed]. *)

  val event_flow_params : Benson_trace.params
  (** Flow characteristics of generated update events: the Benson
      mixture with elephants capped at 100 Mbps (paper §V-A). *)

  val events :
    ?shape:Event_gen.shape ->
    ?arrivals:Event_gen.arrival_process ->
    t ->
    n:int ->
    Event.t list
  (** Generate the update-event queue (default: heterogeneous 10-100
      flow events, all queued at t = 0). Flow ids are namespaced above
      the background's. *)

  val churn : ?target:float -> ?seed:int -> t -> Engine.churn
  (** Background-churn configuration for {!Engine.run}: flows expire
      after their duration and the fill replenishes to [target] (default
      0.70). Seeded explicitly so different policies compared on copies
      of one scenario see the same churn process. *)
end
