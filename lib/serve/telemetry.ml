(* Live serving telemetry: one object owning the request-lifecycle
   tracker, the per-tenant fairness tracker and the SLO tracker, plus
   the OpenMetrics exposition writer. The controller calls the on_*
   hooks at the matching points of its tick; the engine-side
   observations arrive through [observer] attached to the stepper.
   Everything here is recording-only: no hook reads state the scheduler
   consults, so a run with telemetry attached makes bit-identical
   decisions (the serve-telemetry bench scenario enforces this). *)

module Json = Nu_obs.Json
module Counters = Nu_obs.Counters
module Histogram = Nu_obs.Histogram
module Lifecycle = Nu_obs.Lifecycle
module Fairness = Nu_obs.Fairness
module Slo = Nu_obs.Slo
module Expo = Nu_obs.Expo
module Watch = Nu_obs.Watch

type config = {
  metrics_dir : string option;
  metrics_every : int;
  lifecycle_path : string option;
  lifecycle_capacity : int;
  fairness_window : int;
  slo_window : int;
  p99_target_s : float option;
  p999_target_s : float option;
  max_queue : int option;
  max_backlog : int option;
  watch : Watch.config option;
}

let default_config =
  {
    metrics_dir = None;
    metrics_every = 10;
    lifecycle_path = None;
    lifecycle_capacity = 4096;
    fairness_window = 50;
    slo_window = 50;
    p99_target_s = None;
    p999_target_s = None;
    max_queue = None;
    max_backlog = None;
    watch = None;
  }

type t = {
  cfg : config;
  lifecycle : Lifecycle.t;
  fairness : Fairness.t;
  slo : Slo.t;
  watch : Watch.t option;
  (* Counter baselines so the watcher sees per-tick deltas: the named
     counters are process-global and carry values from earlier runs in
     the same process (tests, crashstorm restarts). *)
  mutable last_corrupt : int;
  mutable last_restarts : int;
  mutable tick : int;
  mutable now_s : float;
  mutable expo_writes : int;
}

let create cfg =
  if cfg.metrics_every < 1 then
    invalid_arg "Telemetry.create: metrics_every must be >= 1";
  (match cfg.metrics_dir with
  | Some "" -> invalid_arg "Telemetry.create: empty metrics_dir"
  | Some _ | None -> ());
  {
    cfg;
    lifecycle =
      Lifecycle.create ?path:cfg.lifecycle_path
        ~capacity:cfg.lifecycle_capacity ();
    fairness = Fairness.create ~window:cfg.fairness_window ();
    slo =
      Slo.create ~window:cfg.slo_window ?p99_target_s:cfg.p99_target_s
        ?p999_target_s:cfg.p999_target_s ?max_queue:cfg.max_queue
        ?max_backlog:cfg.max_backlog ();
    watch = Option.map Watch.create cfg.watch;
    last_corrupt = Counters.get_named "store.frames_corrupt";
    last_restarts = Counters.get_named "supervisor.restarts";
    tick = 0;
    now_s = 0.0;
    expo_writes = 0;
  }

let config t = t.cfg
let lifecycle t = t.lifecycle
let fairness t = t.fairness
let slo t = t.slo
let watch t = t.watch
let expo_writes t = t.expo_writes

(* Fairness attribution for engine-side observations: the lifecycle
   table remembers which tenant an event id belongs to; ids the
   controller never stamped (stepper-only runs) chalk up to a
   catch-all. *)
let tenant_for t id =
  match Lifecycle.tenant_of t.lifecycle id with
  | Some tn when tn <> "" -> tn
  | Some _ | None -> "unknown"

let render t =
  Expo.render ~counters:(Counters.snapshot ())
    ~histograms:
      (if Histogram.Registry.enabled () then Histogram.Registry.snapshot ()
       else [])
    ~fairness:t.fairness ~slo:t.slo ?watch:t.watch ()

let write_expo t =
  match t.cfg.metrics_dir with
  | None -> ()
  | Some dir ->
      Expo.write_atomic ~dir (render t);
      t.expo_writes <- t.expo_writes + 1;
      Counters.incr_named "telemetry.expo_writes"

(* ------------------------------------------------------------------ *)
(* Controller-side hooks.                                              *)

let on_tick_start t ~tick ~now_s =
  t.tick <- tick;
  t.now_s <- now_s

let stamp t ~id ?tenant stage =
  Lifecycle.stamp t.lifecycle ~id ?tenant ~tick:t.tick ~t_s:t.now_s stage

let on_arrival t req =
  stamp t ~id:(Request.event_id req) ~tenant:req.Request.tenant
    Lifecycle.Arrived

let on_admission t req (outcome : Admission.outcome) =
  let id = Request.event_id req in
  let tenant = req.Request.tenant in
  match outcome with
  | Admission.Admitted ->
      Fairness.observe_admit t.fairness ~tenant;
      stamp t ~id ~tenant Lifecycle.Admitted
  | Admission.Shed reason ->
      Fairness.observe_shed t.fairness ~tenant;
      stamp t ~id ~tenant (Lifecycle.Shed reason)
  | Admission.Deferred -> stamp t ~id ~tenant Lifecycle.Deferred

let on_drain t req ~wait_ticks =
  Fairness.observe_drain t.fairness ~tenant:req.Request.tenant;
  stamp t
    ~id:(Request.event_id req)
    ~tenant:req.Request.tenant
    (Lifecycle.Submitted { wait_ticks })

let on_tick_end t ~tick ~queue ~backlog =
  Slo.observe_gauges t.slo ~queue ~backlog;
  Slo.on_tick t.slo ~tick;
  Fairness.on_tick t.fairness;
  (match t.watch with
  | Some w ->
      let corrupt = Counters.get_named "store.frames_corrupt" in
      let restarts = Counters.get_named "supervisor.restarts" in
      Watch.on_tick w ~tick ~queue ~backlog
        ~corrupt_d:(max 0 (corrupt - t.last_corrupt))
        ~restarts_d:(max 0 (restarts - t.last_restarts));
      t.last_corrupt <- corrupt;
      t.last_restarts <- restarts
  | None -> ());
  if t.cfg.metrics_dir <> None && (tick + 1) mod t.cfg.metrics_every = 0 then
    write_expo t

let on_retire t =
  write_expo t;
  Option.iter Watch.close t.watch;
  Lifecycle.close t.lifecycle

(* ------------------------------------------------------------------ *)
(* Engine-side observer.                                               *)

let complete t (r : Engine.event_result) ~degraded =
  let id = r.Engine.event_id in
  let ect_s = Engine.ect r in
  (* Read the attribution before the terminal stamp retires it. *)
  let tenant = tenant_for t id in
  Fairness.observe_completion t.fairness ~tenant ~ect_s ~degraded;
  Slo.observe_ect t.slo ect_s;
  (match t.watch with
  | Some w -> Watch.observe_ect w ~tenant ~ect_s
  | None -> ());
  let stage =
    if degraded then
      Lifecycle.Degraded { ect_s; failed_items = r.Engine.failed_items }
    else Lifecycle.Completed { ect_s }
  in
  Lifecycle.stamp t.lifecycle ~id ~tenant ~tick:t.tick
    ~t_s:r.Engine.completion_s stage

let observer t (obs : Engine.observation) =
  match obs with
  | Engine.Round_executed { round; start_s; executed; co_ids; degraded = _ } ->
      List.iter
        (fun id ->
          Lifecycle.stamp t.lifecycle ~id ~tick:t.tick ~t_s:start_s
            (Lifecycle.Planned { round; co_scheduled = List.mem id co_ids }))
        executed
  | Engine.Round_aborted { round; start_s = _; fault_s; batch } ->
      List.iter
        (fun id ->
          Lifecycle.stamp t.lifecycle ~id ~tick:t.tick ~t_s:fault_s
            (Lifecycle.Aborted { round }))
        batch
  | Engine.Event_retry { event_id; ready_s } ->
      Lifecycle.stamp t.lifecycle ~id:event_id ~tick:t.tick ~t_s:t.now_s
        (Lifecycle.Retry_scheduled { ready_s })
  | Engine.Event_completed { result; degraded } ->
      complete t result ~degraded
  | Engine.Round_escalated { round; start_s; event_id } ->
      (* The event leaves its shard for the global coordinator; the
         completion stamp arrives later from the coordinator's result. *)
      Lifecycle.stamp t.lifecycle ~id:event_id ~tick:t.tick ~t_s:start_s
        (Lifecycle.Planned { round; co_scheduled = false })

let to_json t =
  Json.Obj
    ([
      ("stamped", Json.Int (Lifecycle.stamped t.lifecycle));
      ("in_flight", Json.Int (Lifecycle.in_flight t.lifecycle));
      ("expo_writes", Json.Int t.expo_writes);
      ("fairness", Fairness.to_json t.fairness);
      ("slo", Slo.to_json t.slo);
    ]
    @ match t.watch with
      | Some w -> [ ("watch", Watch.report_json w) ]
      | None -> [])
