type t = { tenant : string; event : Event.t }

let v ~tenant event =
  if tenant = "" then invalid_arg "Request.v: empty tenant";
  { tenant; event }

let tenant t = t.tenant
let event t = t.event
let event_id t = t.event.Event.id

let pp ppf t =
  Format.fprintf ppf "%s/ev%d(w=%d)" t.tenant t.event.Event.id
    (Event.work_count t.event)
