module Json = Nu_obs.Json

let ( let* ) = Result.bind

type spec =
  | Synthetic of {
      seed : int;
      rate_per_tick : float;
      flows_per_event : int;
      tenants : string list;
      first_event_id : int;
      first_flow_id : int;
    }
  | Stream of string

type synth = {
  mutable sy_rng : Prng.t;
  sy_rate : float;
  sy_flows_per_event : int;
  sy_tenants : string array;
  sy_params : Benson_trace.params;
  sy_host_count : int;
  mutable sy_next_event_id : int;
  mutable sy_next_flow_id : int;
  mutable sy_tenant_cursor : int;
}

type stream = {
  st_entries : (int * Request.t) array;  (* (tick, request), tick-sorted *)
  mutable st_pos : int;
}

type t = Synth of synth | Streamed of stream

(* Serve workloads follow the batch scenario's flow marginals: Benson
   characteristics with elephants capped to stay under access-link
   headroom. *)
let default_params =
  { Benson_trace.default_params with Benson_trace.elephant_demand_hi_mbps = 100.0 }

let validate_synth ~rate_per_tick ~flows_per_event ~tenants ~host_count =
  if rate_per_tick < 0.0 || not (Float.is_finite rate_per_tick) then
    invalid_arg "Source.create: rate_per_tick must be finite and >= 0";
  if flows_per_event <= 0 then
    invalid_arg "Source.create: flows_per_event must be > 0";
  if tenants = [] then invalid_arg "Source.create: no tenants";
  if List.exists (fun t -> t = "") tenants then
    invalid_arg "Source.create: empty tenant label";
  if host_count < 2 then invalid_arg "Source.create: need >= 2 hosts"

let parse_stream_file path =
  let ic =
    try open_in path
    with Sys_error msg -> invalid_arg ("Source.create: " ^ msg)
  in
  let rec go lineno acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line when String.trim line = "" -> go (lineno + 1) acc
    | line -> (
        let entry =
          let* j = Json.of_string line in
          let* tick = Codec.int_field "tick" j in
          let* req = Codec.request_of_json j in
          if tick < 0 then Error "negative tick" else Ok (tick, req)
        in
        match entry with
        | Ok e -> go (lineno + 1) (e :: acc)
        | Error msg ->
            close_in ic;
            invalid_arg (Printf.sprintf "Source.create: %s:%d: %s" path lineno msg))
  in
  let entries = go 1 [] in
  let arr = Array.of_list entries in
  let sorted = Array.copy arr in
  Array.stable_sort (fun (a, _) (b, _) -> compare a b) sorted;
  if sorted <> arr then
    invalid_arg ("Source.create: " ^ path ^ ": entries must be tick-sorted");
  arr

let create ?(params = default_params) ~host_count spec =
  match spec with
  | Synthetic
      { seed; rate_per_tick; flows_per_event; tenants; first_event_id;
        first_flow_id } ->
      validate_synth ~rate_per_tick ~flows_per_event ~tenants ~host_count;
      Synth
        {
          sy_rng = Prng.create seed;
          sy_rate = rate_per_tick;
          sy_flows_per_event = flows_per_event;
          sy_tenants = Array.of_list tenants;
          sy_params = params;
          sy_host_count = host_count;
          sy_next_event_id = first_event_id;
          sy_next_flow_id = first_flow_id;
          sy_tenant_cursor = 0;
        }
  | Stream path -> Streamed { st_entries = parse_stream_file path; st_pos = 0 }

(* Knuth's product-of-uniforms Poisson draw: exact, and consumes a
   deterministic (count-dependent) number of PRNG draws. *)
let poisson rng lambda =
  if lambda <= 0.0 then 0
  else begin
    let limit = exp (-.lambda) in
    let rec go k p =
      let p = p *. Prng.unit_float rng in
      if p <= limit then k else go (k + 1) p
    in
    go 0 1.0
  end

let draw_event sy ~now_s =
  let id = sy.sy_next_event_id in
  sy.sy_next_event_id <- id + 1;
  let work =
    List.init sy.sy_flows_per_event (fun _ ->
        let fid = sy.sy_next_flow_id in
        sy.sy_next_flow_id <- fid + 1;
        let src = Prng.int sy.sy_rng sy.sy_host_count in
        let d = Prng.int sy.sy_rng (sy.sy_host_count - 1) in
        let dst = if d >= src then d + 1 else d in
        Event.Install
          (Benson_trace.draw_flow ~params:sy.sy_params sy.sy_rng ~id:fid ~src
             ~dst ~arrival_s:now_s))
  in
  let tenant = sy.sy_tenants.(sy.sy_tenant_cursor) in
  sy.sy_tenant_cursor <- (sy.sy_tenant_cursor + 1) mod Array.length sy.sy_tenants;
  Request.v ~tenant
    { Event.id; arrival_s = now_s; kind = Event.Additions; work }

let poll t ~tick ~now_s =
  match t with
  | Synth sy ->
      let n = poisson sy.sy_rng sy.sy_rate in
      List.init n (fun _ -> draw_event sy ~now_s)
  | Streamed st ->
      let out = ref [] in
      let continue = ref true in
      while !continue && st.st_pos < Array.length st.st_entries do
        let etick, req = st.st_entries.(st.st_pos) in
        if etick <= tick then begin
          st.st_pos <- st.st_pos + 1;
          (* Arrival semantics: a command surfaces when the controller
             reaches its tick; its event is re-stamped to that instant. *)
          let ev = { req.Request.event with Event.arrival_s = now_s } in
          out := { req with Request.event = ev } :: !out
        end
        else continue := false
      done;
      List.rev !out

let exhausted = function
  | Synth _ -> false
  | Streamed st -> st.st_pos >= Array.length st.st_entries

(* ------------------------------------------------------------------ *)
(* Freeze/thaw.                                                        *)

type frozen =
  | F_synthetic of {
      rng : int64;
      next_event_id : int;
      next_flow_id : int;
      tenant_cursor : int;
    }
  | F_stream of { pos : int }

let freeze = function
  | Synth sy ->
      F_synthetic
        {
          rng = Prng.raw_state sy.sy_rng;
          next_event_id = sy.sy_next_event_id;
          next_flow_id = sy.sy_next_flow_id;
          tenant_cursor = sy.sy_tenant_cursor;
        }
  | Streamed st -> F_stream { pos = st.st_pos }

let thaw ?params ~host_count spec fz =
  let t = create ?params ~host_count spec in
  (match (t, fz) with
  | Synth sy, F_synthetic f ->
      (* Replace the freshly seeded stream with the frozen cursor. *)
      sy.sy_rng <- Prng.of_raw_state f.rng;
      sy.sy_next_event_id <- f.next_event_id;
      sy.sy_next_flow_id <- f.next_flow_id;
      sy.sy_tenant_cursor <- f.tenant_cursor
  | Streamed st, F_stream f ->
      if f.pos < 0 || f.pos > Array.length st.st_entries then
        invalid_arg "Source.thaw: stream position out of range";
      st.st_pos <- f.pos
  | Synth _, F_stream _ | Streamed _, F_synthetic _ ->
      invalid_arg "Source.thaw: frozen state does not match spec");
  t

let frozen_to_json = function
  | F_synthetic { rng; next_event_id; next_flow_id; tenant_cursor } ->
      Json.Obj
        [
          ("kind", Json.String "synthetic");
          ("rng", Codec.int64_to_json rng);
          ("next_event_id", Json.Int next_event_id);
          ("next_flow_id", Json.Int next_flow_id);
          ("tenant_cursor", Json.Int tenant_cursor);
        ]
  | F_stream { pos } ->
      Json.Obj [ ("kind", Json.String "stream"); ("pos", Json.Int pos) ]

let frozen_of_json j =
  let* kind = Codec.string_field "kind" j in
  match kind with
  | "synthetic" ->
      let* rj = Codec.field "rng" j in
      let* rng = Codec.int64_of_json rj in
      let* next_event_id = Codec.int_field "next_event_id" j in
      let* next_flow_id = Codec.int_field "next_flow_id" j in
      let* tenant_cursor = Codec.int_field "tenant_cursor" j in
      Ok (F_synthetic { rng; next_event_id; next_flow_id; tenant_cursor })
  | "stream" ->
      let* pos = Codec.int_field "pos" j in
      Ok (F_stream { pos })
  | k -> Error ("unknown source kind: " ^ k)
