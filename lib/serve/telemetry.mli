(** Live serving telemetry: lifecycle stamps, per-tenant fairness, SLO
    tracking and OpenMetrics exposition, wired into one object the
    controller drives.

    A [Telemetry.t] owns a {!Nu_obs.Lifecycle} tracker (every request's
    path from arrival to completion, streamed as JSONL), a
    {!Nu_obs.Fairness} tracker (per-tenant ECT histograms, shed/admit
    accounting, Jain's index) and a {!Nu_obs.Slo} tracker (rolling-
    window tail quantiles, backlog gauges, threshold breaches). Pass it
    to {!Serve.create} — the controller calls the [on_*] hooks at the
    matching points of each tick and attaches {!observer} to its
    engine stepper.

    Everything is recording-only: no hook reads state the scheduler
    consults, so a serve run with telemetry attached produces a
    bit-identical decision digest (enforced by the [serve-telemetry-k8]
    bench scenario). Telemetry is not part of the checkpoint
    fingerprint either — a journal written with telemetry on replays
    cleanly with it off, and vice versa.

    When [metrics_dir] is set, an OpenMetrics exposition file
    ([metrics.prom]) is rewritten atomically every [metrics_every]
    ticks and once at retirement, rendered from the live counter
    registry, histogram registry (when sampling is enabled), and the
    fairness/SLO state. *)

type config = {
  metrics_dir : string option;
      (** Directory for the exposition file; [None] disables it. *)
  metrics_every : int;  (** Write cadence in ticks (default 10). *)
  lifecycle_path : string option;
      (** JSONL stream of lifecycle stamps; [None] keeps only the ring. *)
  lifecycle_capacity : int;  (** In-memory ring bound (default 4096). *)
  fairness_window : int;  (** Fairness rotation window (default 50). *)
  slo_window : int;  (** SLO rotation window (default 50). *)
  p99_target_s : float option;  (** SLO breach thresholds; [None] = *)
  p999_target_s : float option;  (** never evaluated. *)
  max_queue : int option;
  max_backlog : int option;
  watch : Nu_obs.Watch.config option;
      (** Attach an {!Nu_obs.Watch} watchdog: ECT samples and per-tick
          queue/backlog gauges plus WAL-corruption and supervisor-
          restart counter deltas are fed to it each tick, its alert
          families join the exposition, and its journals (when
          [Watch.config.dir] is set) follow the run. [None] disables
          it. *)
}

val default_config : config
(** Everything off/defaulted: no exposition, no JSONL, windows of 50,
    no thresholds. *)

type t

val create : config -> t
(** Raises [Invalid_argument] when [metrics_every < 1] or
    [metrics_dir = Some ""]. *)

val config : t -> config
val lifecycle : t -> Nu_obs.Lifecycle.t
val fairness : t -> Nu_obs.Fairness.t
val slo : t -> Nu_obs.Slo.t

val watch : t -> Nu_obs.Watch.t option
(** The attached watchdog, when the config carried one. *)

val expo_writes : t -> int
(** Exposition files written so far (also counted in the
    ["telemetry.expo_writes"] named counter). *)

(** {2 Controller hooks}

    Called by {!Serve}; exposed for tests and custom drivers. *)

val on_tick_start : t -> tick:int -> now_s:float -> unit
(** Set the tick context later stamps inherit. Call first each tick. *)

val on_arrival : t -> Request.t -> unit
(** Stamp [Arrived]. Fresh arrivals only — a deferred request was
    already stamped when first seen. *)

val on_admission : t -> Request.t -> Admission.outcome -> unit
(** Stamp the admission decision and account it to the tenant. *)

val on_drain : t -> Request.t -> wait_ticks:int -> unit
(** Stamp [Submitted] with the queueing delay in ticks. *)

val on_tick_end : t -> tick:int -> queue:int -> backlog:int -> unit
(** Record gauges, advance the fairness/SLO window clocks, feed the
    watchdog its per-tick observation, and write the exposition file
    on the [metrics_every] cadence. *)

val on_retire : t -> unit
(** Final exposition write, watchdog-journal close and
    lifecycle-stream close. *)

val observer : t -> Engine.observation -> unit
(** Engine-side progress: pass [observer t] to
    {!Engine.Stepper.create} (done by {!Serve.create} when telemetry
    is attached). Maps round executions/aborts, retries and
    completions into lifecycle stamps and fairness/SLO samples. *)

val render : t -> string
(** The OpenMetrics document {!write_expo} would publish now. *)

val write_expo : t -> unit
(** Write the exposition file immediately (no-op without
    [metrics_dir]). *)

val to_json : t -> Nu_obs.Json.t
(** Summary block for {!Run_report}: stamp counts, exposition writes,
    fairness and SLO state. *)
