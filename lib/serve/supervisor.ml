module Json = Nu_obs.Json
module Counters = Nu_obs.Counters
module Histogram = Nu_obs.Histogram
module Store_fault = Nu_fault.Store_fault

type config = {
  max_restarts : int;
  backoff_base_s : float;
  backoff_factor : float;
  backoff_max_s : float;
  backoff_jitter : float;
  keep : int;
  checkpoint_every : int;
}

let default_config =
  {
    max_restarts = 16;
    backoff_base_s = 0.05;
    backoff_factor = 2.0;
    backoff_max_s = 5.0;
    backoff_jitter = 0.25;
    keep = Checkpoint.Chain.default_keep;
    checkpoint_every = 10;
  }

type failure_class =
  | Crash_injected
  | Corrupt_store
  | Fingerprint_mismatch
  | Invariant_violation
  | Io_error
  | Unknown

let class_name = function
  | Crash_injected -> "crash_injected"
  | Corrupt_store -> "corrupt_store"
  | Fingerprint_mismatch -> "fingerprint_mismatch"
  | Invariant_violation -> "invariant_violation"
  | Io_error -> "io_error"
  | Unknown -> "unknown"

let class_tag = function
  | Crash_injected -> 1
  | Corrupt_store -> 2
  | Fingerprint_mismatch -> 3
  | Invariant_violation -> 4
  | Io_error -> 5
  | Unknown -> 6

let contains ~needle hay =
  let hay = String.lowercase_ascii hay in
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let classify = function
  | Store_fault.Crash _ -> Crash_injected
  | Store_fault.Store_error _ -> Io_error
  | Sys_error _ -> Io_error
  | Failure m when contains ~needle:"invariant" m || contains ~needle:"quiescent" m
    ->
      Invariant_violation
  | Failure m when contains ~needle:"corrupt" m || contains ~needle:"hash" m ->
      Corrupt_store
  | Failure m when contains ~needle:"fingerprint" m || contains ~needle:"mismatch" m
    ->
      Fingerprint_mismatch
  | _ -> Unknown

type event =
  | Started of { attempt : int; from_tick : int; fallback_depth : int; replayed : int }
  | Failed of { attempt : int; at_tick : int; cls : failure_class; reason : string }
  | Backoff of { attempt : int; delay_s : float }
  | Cold_start of { attempt : int; reason : string }
  | Completed of { ticks : int; restarts : int }
  | Gave_up of { restarts : int }

let event_to_json = function
  | Started { attempt; from_tick; fallback_depth; replayed } ->
      Json.Obj
        [
          ("event", Json.String "started");
          ("attempt", Json.Int attempt);
          ("from_tick", Json.Int from_tick);
          ("fallback_depth", Json.Int fallback_depth);
          ("replayed", Json.Int replayed);
        ]
  | Failed { attempt; at_tick; cls; reason } ->
      Json.Obj
        [
          ("event", Json.String "failed");
          ("attempt", Json.Int attempt);
          ("at_tick", Json.Int at_tick);
          ("class", Json.String (class_name cls));
          ("reason", Json.String reason);
        ]
  | Backoff { attempt; delay_s } ->
      Json.Obj
        [
          ("event", Json.String "backoff");
          ("attempt", Json.Int attempt);
          ("delay_s", Json.Float delay_s);
        ]
  | Cold_start { attempt; reason } ->
      Json.Obj
        [
          ("event", Json.String "cold_start");
          ("attempt", Json.Int attempt);
          ("reason", Json.String reason);
        ]
  | Completed { ticks; restarts } ->
      Json.Obj
        [
          ("event", Json.String "completed");
          ("ticks", Json.Int ticks);
          ("restarts", Json.Int restarts);
        ]
  | Gave_up { restarts } ->
      Json.Obj [ ("event", Json.String "gave_up"); ("restarts", Json.Int restarts) ]

(* Same FNV-1a shape as [Nu_fault.Recovery.digest]: the recovery log
   digest is a deterministic fingerprint of the whole supervision
   history, so two crash-storm runs agree on more than the final
   decision digest. *)
let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L
let fnv64 h x = Int64.mul (Int64.logxor h x) fnv_prime
let fnv_int h i = fnv64 h (Int64.of_int i)
let fnv_float h f = fnv64 h (Int64.bits_of_float f)
let fnv_string h s = String.fold_left (fun h c -> fnv_int h (Char.code c)) h s

let log_digest events =
  let h =
    List.fold_left
      (fun h e ->
        match e with
        | Started { attempt; from_tick; fallback_depth; replayed } ->
            fnv_int
              (fnv_int (fnv_int (fnv_int (fnv_int h 1) attempt) from_tick)
                 fallback_depth)
              replayed
        | Failed { attempt; at_tick; cls; reason } ->
            fnv_string
              (fnv_int (fnv_int (fnv_int (fnv_int h 2) attempt) at_tick)
                 (class_tag cls))
              reason
        | Backoff { attempt; delay_s } ->
            fnv_float (fnv_int (fnv_int h 3) attempt) delay_s
        | Cold_start { attempt; reason } ->
            fnv_string (fnv_int (fnv_int h 4) attempt) reason
        | Completed { ticks; restarts } ->
            fnv_int (fnv_int (fnv_int h 5) ticks) restarts
        | Gave_up { restarts } -> fnv_int (fnv_int h 6) restarts)
      fnv_basis events
  in
  Printf.sprintf "%016Lx" h

type outcome = {
  digest : string option;
  ticks : int;
  restarts : int;
  gave_up : bool;
  corrupt_frames : int;
  events : event list;
  recovery_digest : string;
}

let outcome_to_json o =
  Json.Obj
    [
      ( "digest",
        match o.digest with None -> Json.Null | Some d -> Json.String d );
      ("ticks", Json.Int o.ticks);
      ("restarts", Json.Int o.restarts);
      ("gave_up", Json.Bool o.gave_up);
      ("corrupt_frames", Json.Int o.corrupt_frames);
      ("recovery_digest", Json.String o.recovery_digest);
      ("events", Json.List (List.map event_to_json o.events));
    ]

(* ------------------------------------------------------------------ *)
(* The supervised loop.                                                *)

let backoff_s sup rng ~attempt =
  let raw = sup.backoff_base_s *. (sup.backoff_factor ** float_of_int (attempt - 1)) in
  let capped = Float.min sup.backoff_max_s raw in
  capped *. (1.0 +. (sup.backoff_jitter *. ((2.0 *. Prng.unit_float rng) -. 1.0)))

let run ?(sup = default_config) ?source_params ?retry ?fault ~jitter_seed
    ~serve_config ~source_spec ~topology ~fresh_net ~journal_path
    ~checkpoint_path ~ticks () =
  let rng = Prng.create jitter_seed in
  let events = ref [] in
  let push e = events := e :: !events in
  let restarts = ref 0 in
  let attempt = ref 0 in
  let corrupt_total = ref 0 in
  let graph = topology.Topology.graph in
  (* Read whatever survives on disk; corruption is counted, not fatal. *)
  let surviving_entries () =
    if not (Sys.file_exists journal_path) then []
    else
      match Journal.read_report ?fault journal_path with
      | Error _ -> []
      | Ok r ->
          let n = List.length r.Journal.corrupt in
          if n > 0 then begin
            corrupt_total := !corrupt_total + n;
            Counters.add_named "store.frames_corrupt" n
          end;
          r.Journal.entries
  in
  let cold_start ~reason entries =
    push (Cold_start { attempt = !attempt; reason });
    let t =
      Serve.create ?source_params serve_config ~topology ~net:(fresh_net ())
        ~source_spec
    in
    let replayed, _stop = Serve.replay_prefix t entries in
    (t, sup.keep + 1, replayed)
  in
  (* Recover a controller from the newest verifiable chain generation,
     replay the clean journal prefix past it, and fall through to a
     cold start (fresh net + full-journal replay; the deterministic
     source regenerates anything the journal lost) when no generation
     verifies or the fingerprint does not match. *)
  let recover () =
    let entries = surviving_entries () in
    let t, depth, replayed =
      match Checkpoint.Chain.fallback ?fault ~keep:sup.keep ~graph checkpoint_path with
      | Error e -> cold_start ~reason:("no verifiable checkpoint: " ^ e) entries
      | Ok (cp, depth) -> (
          match
            Serve.restore_snapshot ?source_params ?retry ~config:serve_config
              ~source_spec ~topology cp
          with
          | Error e -> cold_start ~reason:("restore refused: " ^ e) entries
          | Ok t ->
              let replayed, _stop = Serve.replay_prefix t entries in
              (t, depth, replayed))
    in
    if depth > 0 then Counters.incr_named "recovery.fallback_depth";
    if Histogram.Registry.enabled () then
      Histogram.Registry.record "recovery.fallback_depth" (float_of_int depth);
    push
      (Started
         {
           attempt = !attempt;
           from_tick = Serve.tick_count t;
           fallback_depth = depth;
           replayed;
         });
    (t, Journal.committed_ticks entries)
  in
  (* Re-roll the journal: rewrite the clean committed prefix into a
     fresh segment chain, dropping corrupt frames and any uncommitted
     tail, then keep journaling new ticks after it. Skipped once the
     target tick is reached — there is nothing left to journal, and
     truncating then would throw away the commits the final replay
     audit reads. *)
  let reroll t groups =
    if Serve.tick_count t >= ticks then None
    else begin
      let w = Journal.open_writer ?fault journal_path in
      List.iter
        (fun (k, reqs) ->
          if k < Serve.tick_count t then begin
            List.iter
              (fun request -> Journal.write w (Journal.Arrive { tick = k; request }))
              reqs;
            Journal.write w (Journal.Tick_done k)
          end)
        groups;
      Journal.flush w;
      Serve.set_journal t (Some w);
      Some w
    end
  in
  let serve_to_target t =
    while Serve.tick_count t < ticks do
      Serve.tick t;
      if
        sup.checkpoint_every > 0
        && Serve.tick_count t mod sup.checkpoint_every = 0
        && Serve.tick_count t < ticks
      then ignore (Serve.save_checkpoint ?fault ~keep:sup.keep t checkpoint_path : string)
    done;
    (* Final chain generation at exactly the target tick: the replay
       audit restores this and must find zero ticks left to re-drive. *)
    ignore (Serve.save_checkpoint ?fault ~keep:sup.keep t checkpoint_path : string)
  in
  let rec supervise () =
    incr attempt;
    let journal_ref = ref None in
    match
      let t, groups = recover () in
      journal_ref := reroll t groups;
      serve_to_target t;
      (match !journal_ref with
      | Some w ->
          Journal.close_writer w;
          Serve.set_journal t None
      | None -> ());
      t
    with
    | t ->
        Serve.complete t;
        push (Completed { ticks; restarts = !restarts });
        let ev = List.rev !events in
        {
          digest = Some (Serve.digest t);
          ticks;
          restarts = !restarts;
          gave_up = false;
          corrupt_frames = !corrupt_total;
          events = ev;
          recovery_digest = log_digest ev;
        }
    | exception e ->
        (match !journal_ref with
        | Some w -> Journal.abort_writer w
        | None -> ());
        let cls = classify e in
        let reason =
          match e with
          | Store_fault.Crash m -> m
          | Store_fault.Store_error m -> m
          | Sys_error m -> m
          | Failure m -> m
          | e -> Printexc.to_string e
        in
        push (Failed { attempt = !attempt; at_tick = -1; cls; reason });
        if !restarts >= sup.max_restarts then begin
          push (Gave_up { restarts = !restarts });
          let ev = List.rev !events in
          {
            digest = None;
            ticks;
            restarts = !restarts;
            gave_up = true;
            corrupt_frames = !corrupt_total;
            events = ev;
            recovery_digest = log_digest ev;
          }
        end
        else begin
          incr restarts;
          Counters.incr_named "supervisor.restarts";
          let delay = backoff_s sup rng ~attempt:!restarts in
          if Histogram.Registry.enabled () then
            Histogram.Registry.record "supervisor.backoff_s" delay;
          push (Backoff { attempt = !restarts; delay_s = delay });
          supervise ()
        end
  in
  supervise ()
