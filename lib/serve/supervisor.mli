(** Bounded-restart supervision for the serving loop.

    The supervisor runs {!Serve} to a target tick under storage-fault
    pressure. Every simulated death ({!Nu_fault.Store_fault.Crash} or
    any other escape) is classified, logged, charged an exponential
    backoff with PRNG jitter (recorded, never slept), and answered
    with a recovery attempt:

    + load the newest {e verifiable} checkpoint-chain generation
      (content hash + fingerprint checked), falling back to older
      ancestors,
    + tolerantly replay the surviving journal's clean committed prefix
      past the checkpoint,
    + if no generation verifies (or the fingerprint is refused), cold
      start from tick 0 with a fresh net and replay the journal from
      segment 0 — the deterministic source regenerates anything the
      journal lost,
    + re-roll the journal (rewrite the clean prefix, drop corruption),
      re-attach it, and keep serving.

    Restarting more than [max_restarts] times gives up with a partial
    {!outcome}. The whole supervision history digests to a single
    [recovery_digest] in the style of {!Nu_fault.Recovery}. Counters:
    [supervisor.restarts], [recovery.fallback_depth],
    [store.frames_corrupt] (named registry); histograms
    [supervisor.backoff_s], [recovery.fallback_depth]. *)

type config = {
  max_restarts : int;
  backoff_base_s : float;
  backoff_factor : float;
  backoff_max_s : float;
  backoff_jitter : float;  (** Relative jitter amplitude in [0, 1]. *)
  keep : int;  (** Checkpoint-chain generations retained. *)
  checkpoint_every : int;  (** Chain save period in ticks (0 = only final). *)
}

val default_config : config
(** 16 restarts, 50 ms base doubling to a 5 s cap, 25% jitter,
    chain keep 2, checkpoint every 10 ticks. *)

type failure_class =
  | Crash_injected  (** A {!Nu_fault.Store_fault.Crash}. *)
  | Corrupt_store
  | Fingerprint_mismatch
  | Invariant_violation
  | Io_error
  | Unknown

val class_name : failure_class -> string
val classify : exn -> failure_class

type event =
  | Started of {
      attempt : int;
      from_tick : int;
      fallback_depth : int;
          (** Chain generation restored (0 = newest, [keep]+1 = cold). *)
      replayed : int;
    }
  | Failed of {
      attempt : int;
      at_tick : int;
      cls : failure_class;
      reason : string;
    }
  | Backoff of { attempt : int; delay_s : float }
  | Cold_start of { attempt : int; reason : string }
  | Completed of { ticks : int; restarts : int }
  | Gave_up of { restarts : int }

val event_to_json : event -> Nu_obs.Json.t

val log_digest : event list -> string
(** FNV-1a digest of the supervision history (16 hex digits). *)

type outcome = {
  digest : string option;
      (** Final decision digest; [None] when the supervisor gave up. *)
  ticks : int;
  restarts : int;
  gave_up : bool;
  corrupt_frames : int;
      (** Corrupt journal frames skipped across all recoveries. *)
  events : event list;
  recovery_digest : string;
}

val outcome_to_json : outcome -> Nu_obs.Json.t
(** The recovery-log artifact for the crash-storm harness. *)

val run :
  ?sup:config ->
  ?source_params:Benson_trace.params ->
  ?retry:Nu_fault.Retry_policy.t ->
  ?fault:Nu_fault.Store_fault.t ->
  jitter_seed:int ->
  serve_config:Serve.config ->
  source_spec:Source.spec ->
  topology:Topology.t ->
  fresh_net:(unit -> Net_state.t) ->
  journal_path:string ->
  checkpoint_path:string ->
  ticks:int ->
  unit ->
  outcome
(** Serve [ticks] ticks under supervision, then drain to quiescence.
    [fresh_net] must rebuild the deterministic initial network (it is
    called once per cold start). The final chain generation is saved
    at exactly the target tick, so an external
    [restore + replay + complete] audit of the on-disk state
    reproduces [digest] bit-for-bit. Deterministic: same arguments
    (including the fault plan state) give the same outcome. *)
