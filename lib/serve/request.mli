(** One tenant-attributed update request.

    The online controller serves update events on behalf of named
    tenants; the tenant label drives per-tenant admission quotas and
    fair draining, and is carried through the journal so replay
    reconstructs the same accounting. *)

type t = { tenant : string; event : Event.t }

val v : tenant:string -> Event.t -> t
(** Raises [Invalid_argument] on an empty tenant label. *)

val tenant : t -> string
val event : t -> Event.t
val event_id : t -> int
val pp : Format.formatter -> t -> unit
