(** Online update controller: the batch {!Nu_sched.Engine} turned into
    a long-running service.

    The controller advances in discrete {e ticks}. Each tick:

    + polls the arrival {!Source} for requests surfacing now,
    + journals them write-ahead (when a {!Journal.writer} is attached),
    + offers deferred-then-fresh requests to the bounded {!Admission}
      queue (shedding or deferring per policy),
    + drains up to [drain_per_tick] requests fairly across tenants and
      submits their events to the incremental engine stepper,
    + executes up to [steps_per_tick] service rounds,
    + commits the tick with a [Tick_done] journal marker.

    Everything is deterministic: same config, topology, net and source
    spec → bit-identical decision digest, and {!snapshot}/{!restore}/
    {!replay} reproduce an interrupted run's digest exactly. Metrics
    flow through [Nu_obs] (serve_* counters; [serve.admission_wait_s],
    [serve.queue_depth], [serve.engine_backlog] histograms when the
    registry is enabled). *)

(** {2 Configuration} *)

type churn_spec = {
  churn_seed : int;
  churn_target : float;  (** Fabric-utilisation refill setpoint. *)
  churn_max_per_round : int;
  churn_first_id : int;
}
(** Background churn for serving runs. Unlike the batch scenario's
    churn (one PRNG threaded across draws), each flow here is drawn
    from a fresh stream keyed by flow id — a pure function of [id] —
    so churn state never needs checkpointing beyond the engine's
    next-churn-id cursor. *)

type config = {
  policy : Policy.t;  (** Scheduling policy; flow-level is batch-only. *)
  engine_seed : int;
  admission_capacity : int;
  admission_policy : Admission.policy;
  drain_per_tick : int;  (** Max requests entering the engine per tick. *)
  steps_per_tick : int;  (** Max service rounds executed per tick. *)
  tick_dt_s : float;  (** Simulated seconds per tick. *)
  co_max_cost_mbit : float;  (** Co-scheduling budget (0 = off). *)
  estimate_cache : bool;
  churn : churn_spec option;
  domains : int;
      (** Probe fan-out width handed to the engine (see
          {!Nu_sched.Engine.run}). Decisions are bit-identical at any
          width, so this is an execution knob, not a semantic one — it
          is deliberately excluded from the checkpoint {!fingerprint},
          and a journal may be replayed at a different width than the
          one it was recorded under. *)
}

val default_config : Policy.t -> config
(** seed 42, capacity 64, Block admission, drain 8, steps 4, dt 50 ms,
    co-scheduling off, estimate cache on, no churn, 1 domain. *)

val config_to_json : config -> Nu_obs.Json.t
val spec_to_json : Source.spec -> Nu_obs.Json.t

val fingerprint : config -> Source.spec -> Nu_obs.Json.t
(** The serving-configuration identity stored as checkpoint [meta] and
    validated on {!restore}: a restore under a different configuration
    or source spec is refused rather than silently diverging. *)

val fingerprint_matches : Nu_obs.Json.t -> Nu_obs.Json.t -> bool
(** Printed-form equality — sound because printing is canonical for
    this Json library even where parsing widens types. *)

val validate_config : config -> unit
(** Raises [Invalid_argument] on out-of-range knobs or a batch-only
    policy. {!create} calls this; embedding layers (the sharded
    fabric) call it on the shared base configuration. *)

val engine_churn :
  host_count:int -> churn_spec option -> Nu_sched.Engine.churn option
(** Lower a serving churn spec to the engine's churn record (each flow
    drawn from a fresh stream keyed by its id). Exposed so the sharded
    fabric can hand every shard the identical flow generator while
    zeroing the refill setpoint on all but the churn-owning shard. *)

(** {2 Lifecycle} *)

type t

val create :
  ?source_params:Benson_trace.params ->
  ?injector:Nu_fault.Injector.t ->
  ?series:Nu_obs.Series.t ->
  ?telemetry:Telemetry.t ->
  ?journal:Journal.writer ->
  config ->
  topology:Topology.t ->
  net:Net_state.t ->
  source_spec:Source.spec ->
  t
(** Raises [Invalid_argument] on invalid configuration (non-positive
    drain/steps/dt, flow-level policy, bad churn spec) or source spec.

    [telemetry] attaches live serving telemetry ({!Telemetry}):
    lifecycle stamps for every request, per-tenant fairness and SLO
    tracking, and periodic OpenMetrics exposition. Recording-only — the
    decision digest is bit-identical with or without it, and it is not
    part of the checkpoint {!fingerprint}. *)

val tick : t -> unit
(** Run one full tick (poll → journal → admit → drain → step → commit). *)

val run : ?checkpoint_path:string -> ?checkpoint_every:int -> ticks:int -> t -> unit
(** [ticks] consecutive {!tick}s. With [checkpoint_path] and
    [checkpoint_every] > 0, saves an atomic checkpoint after every
    [checkpoint_every]-th tick. *)

val complete : ?max_ticks:int -> t -> unit
(** Drain to quiescence: tick (without polling the source or writing
    the journal) until the admission queue, deferral list and engine
    are all empty. Deterministic given the controller state, which is
    why these ticks need no journal. Raises [Failure] if quiescence is
    not reached within [max_ticks] (default 1_000_000). *)

(** {2 Inspection} *)

val tick_count : t -> int
(** Ticks completed (= the next tick to execute). *)

val now_s : t -> float
val admission : t -> Admission.t

val telemetry : t -> Telemetry.t option
(** The attached telemetry, if any. *)

val deferred_count : t -> int
val engine_backlog : t -> int
val completed : t -> int
val source_exhausted : t -> bool

val quiescent : t -> bool
(** No queued, deferred or in-engine work remains. *)

val result : t -> Engine.run_result
(** Rounds executed so far (pure; see {!Engine.Stepper.result}). *)

val digest : t -> string
(** {!Run_digest.of_run} of {!result} — the bit-exact decision
    fingerprint used by the replay and crash-recovery guarantees. *)

val retire : t -> Engine.run_result
(** {!result} plus end-of-life histogram recording
    ({!Engine.record_event_histograms}), probe-worker shutdown
    ({!Engine.Stepper.close}), a final telemetry exposition write +
    lifecycle-stream close ({!Telemetry.on_retire}), and journal
    close. *)

val set_journal : t -> Journal.writer option -> unit
(** Replace the journal writer (closing is the caller's concern). *)

(** {2 Checkpoint, restore, replay} *)

val snapshot : t -> Checkpoint.t
(** Freeze the full controller state. Call between ticks. [seq] and
    [parent] are left at their defaults — {!Checkpoint.Chain.save}
    threads them from the previous chain generation. *)

val save_checkpoint :
  ?fault:Nu_fault.Store_fault.t -> ?keep:int -> t -> string -> string
(** {!snapshot} + {!Checkpoint.Chain.save}: rotates the chain
    generations, saves atomically and durably, and returns the new
    checkpoint's content hash. *)

val restore_snapshot :
  ?source_params:Benson_trace.params ->
  ?series:Nu_obs.Series.t ->
  ?telemetry:Telemetry.t ->
  ?retry:Nu_fault.Retry_policy.t ->
  ?check_invariants:bool ->
  config:config ->
  source_spec:Source.spec ->
  topology:Topology.t ->
  Checkpoint.t ->
  (t, string) result
(** Rebuild a controller from an already-loaded (and verified)
    checkpoint — the chain-fallback path. Same validation as
    {!restore}. *)

val restore :
  ?source_params:Benson_trace.params ->
  ?series:Nu_obs.Series.t ->
  ?telemetry:Telemetry.t ->
  ?retry:Nu_fault.Retry_policy.t ->
  ?check_invariants:bool ->
  ?fault:Nu_fault.Store_fault.t ->
  config:config ->
  source_spec:Source.spec ->
  topology:Topology.t ->
  string ->
  (t, string) result
(** Load a checkpoint file and rebuild a controller that continues
    bit-identically. [config], [source_spec] and [topology] must be
    the ones the original run was created with — the checkpoint's
    {!fingerprint} is validated and a mismatch is an [Error]. The
    restored controller has no journal attached (see {!set_journal}). *)

val replay_entries :
  ?upto:int -> t -> Journal.entry list -> (int, string) result
(** Strict replay from in-memory journal entries: any tick gap or
    source divergence is an [Error]. Returns ticks replayed. *)

val replay_prefix : t -> Journal.entry list -> int * string option
(** Tolerant replay for recovery: re-drive the longest clean prefix of
    committed ticks and stop at the first gap or divergence (a corrupt
    frame ate something there), returning the stop reason. The source
    cursor is rewound to its pre-poll state on a stop, so the
    remaining ticks can be re-served live and regenerate the exact
    same arrivals. *)

val replay : ?upto:int -> journal:string -> t -> (int, string) result
(** Re-drive a restored controller from its operation journal: for
    every committed tick at or after the controller's current tick
    (and below [upto], when given), re-poll the source — validating
    that it regenerates exactly the journaled arrivals — and execute
    the tick with the journaled requests. Trailing uncommitted
    arrivals (crash mid-tick) are ignored; the deterministic source
    will regenerate them when serving resumes. The journal is read
    tolerantly (corrupt frames are skipped and counted into the
    [store.frames_corrupt] counter) but replayed strictly. Returns the
    number of ticks replayed. *)
