module Json = Nu_obs.Json
module Counters = Nu_obs.Counters
module Histogram = Nu_obs.Histogram
module Injector = Nu_fault.Injector

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Configuration.                                                      *)

type churn_spec = {
  churn_seed : int;
  churn_target : float;
  churn_max_per_round : int;
  churn_first_id : int;
}

type config = {
  policy : Policy.t;
  engine_seed : int;
  admission_capacity : int;
  admission_policy : Admission.policy;
  drain_per_tick : int;
  steps_per_tick : int;
  tick_dt_s : float;
  co_max_cost_mbit : float;
  estimate_cache : bool;
  churn : churn_spec option;
  domains : int;
      (* Execution width only — never part of the checkpoint
         fingerprint: decisions are width-independent, so a journal
         recorded at one width replays identically at another. *)
}

let default_config policy =
  {
    policy;
    engine_seed = 42;
    admission_capacity = 64;
    admission_policy = Admission.Block;
    drain_per_tick = 8;
    steps_per_tick = 4;
    tick_dt_s = 0.05;
    co_max_cost_mbit = 0.0;
    estimate_cache = true;
    churn = None;
    domains = 1;
  }

let validate_config cfg =
  (match cfg.policy with
  | Policy.Flow_level _ ->
      invalid_arg "Serve: flow-level policies are batch-only"
  | _ -> ());
  if cfg.drain_per_tick <= 0 then
    invalid_arg "Serve: drain_per_tick must be > 0";
  if cfg.steps_per_tick <= 0 then
    invalid_arg "Serve: steps_per_tick must be > 0";
  if (not (Float.is_finite cfg.tick_dt_s)) || cfg.tick_dt_s <= 0.0 then
    invalid_arg "Serve: tick_dt_s must be finite and > 0";
  if cfg.co_max_cost_mbit < 0.0 || not (Float.is_finite cfg.co_max_cost_mbit)
  then invalid_arg "Serve: co_max_cost_mbit must be finite and >= 0";
  if cfg.domains < 1 then invalid_arg "Serve: domains must be >= 1";
  match cfg.churn with
  | None -> ()
  | Some cs ->
      if
        (not (Float.is_finite cs.churn_target))
        || cs.churn_target <= 0.0 || cs.churn_target > 1.0
      then invalid_arg "Serve: churn_target must be in (0, 1]";
      if cs.churn_max_per_round <= 0 then
        invalid_arg "Serve: churn_max_per_round must be > 0";
      if cs.churn_first_id < 0 then
        invalid_arg "Serve: churn_first_id must be >= 0"

(* Each churn flow is drawn from a fresh stream keyed by its id, so the
   only churn cursor a checkpoint needs is the engine's next-churn-id —
   already part of the stepper's frozen state. *)
let engine_churn ~host_count = function
  | None -> None
  | Some cs ->
      let make_flow ~id =
        let rng = Prng.create (cs.churn_seed lxor (id * 0x9E3779B1)) in
        (Yahoo_trace.generate ~first_id:id rng ~host_count ~n:1).(0)
      in
      Some
        {
          Engine.make_flow;
          target_utilization = cs.churn_target;
          max_placements_per_round = cs.churn_max_per_round;
          first_id = cs.churn_first_id;
        }

let churn_spec_to_json cs =
  Json.Obj
    [
      ("seed", Json.Int cs.churn_seed);
      ("target", Json.Float cs.churn_target);
      ("max_per_round", Json.Int cs.churn_max_per_round);
      ("first_id", Json.Int cs.churn_first_id);
    ]

let config_to_json cfg =
  Json.Obj
    [
      ("policy", Codec.policy_to_json cfg.policy);
      ("engine_seed", Json.Int cfg.engine_seed);
      ("admission_capacity", Json.Int cfg.admission_capacity);
      ("admission_policy", Json.String (Admission.policy_name cfg.admission_policy));
      ("drain_per_tick", Json.Int cfg.drain_per_tick);
      ("steps_per_tick", Json.Int cfg.steps_per_tick);
      ("tick_dt_s", Json.Float cfg.tick_dt_s);
      ("co_max_cost_mbit", Json.Float cfg.co_max_cost_mbit);
      ("estimate_cache", Json.Bool cfg.estimate_cache);
      ( "churn",
        match cfg.churn with
        | None -> Json.Null
        | Some cs -> churn_spec_to_json cs );
    ]

let spec_to_json = function
  | Source.Synthetic
      { seed; rate_per_tick; flows_per_event; tenants; first_event_id;
        first_flow_id } ->
      Json.Obj
        [
          ("kind", Json.String "synthetic");
          ("seed", Json.Int seed);
          ("rate_per_tick", Json.Float rate_per_tick);
          ("flows_per_event", Json.Int flows_per_event);
          ("tenants", Json.List (List.map (fun t -> Json.String t) tenants));
          ("first_event_id", Json.Int first_event_id);
          ("first_flow_id", Json.Int first_flow_id);
        ]
  | Source.Stream path ->
      Json.Obj [ ("kind", Json.String "stream"); ("path", Json.String path) ]

let fingerprint cfg spec =
  Json.Obj [ ("config", config_to_json cfg); ("source", spec_to_json spec) ]

(* Fingerprints are compared through a print/parse round-trip (the
   stored copy went through the checkpoint file), so compare printed
   forms — printing is canonical even where parsing widens types. *)
let fingerprint_matches a b = Json.to_string a = Json.to_string b

(* ------------------------------------------------------------------ *)
(* Controller.                                                         *)

type t = {
  cfg : config;
  topology : Topology.t;
  net : Net_state.t;
  source_spec : Source.spec;
  source_params : Benson_trace.params option;
      (* Kept so tolerant replay can rewind the source cursor by
         re-thawing a pre-poll freeze. *)
  mutable source : Source.t;
  admission : Admission.t;
  stepper : Engine.Stepper.t;
  injector : Injector.t option;
  telemetry : Telemetry.t option;
      (* Recording-only; deliberately absent from the checkpoint
         fingerprint so journals replay regardless of telemetry. *)
  mutable journal : Journal.writer option;
  mutable deferred : Request.t list;
  mutable tick_count : int;
}

let create ?source_params ?injector ?series ?telemetry ?journal cfg ~topology
    ~net ~source_spec =
  validate_config cfg;
  let host_count = Topology.host_count topology in
  let source = Source.create ?params:source_params ~host_count source_spec in
  let admission =
    Admission.create ~capacity:cfg.admission_capacity
      ~policy:cfg.admission_policy
  in
  let stepper =
    Engine.Stepper.create ~seed:cfg.engine_seed ~domains:cfg.domains
      ?churn:(engine_churn ~host_count cfg.churn)
      ~co_max_cost_mbit:cfg.co_max_cost_mbit
      ~estimate_cache:cfg.estimate_cache ?injector ?series
      ?observer:(Option.map Telemetry.observer telemetry)
      ~net cfg.policy
  in
  {
    cfg;
    topology;
    net;
    source_spec;
    source_params;
    source;
    admission;
    stepper;
    injector;
    telemetry;
    journal;
    deferred = [];
    tick_count = 0;
  }

let tick_count t = t.tick_count
let now_s t = float_of_int t.tick_count *. t.cfg.tick_dt_s
let admission t = t.admission
let telemetry t = t.telemetry
let deferred_count t = List.length t.deferred
let engine_backlog t = Engine.Stepper.backlog t.stepper
let completed t = Engine.Stepper.completed t.stepper
let source_exhausted t = Source.exhausted t.source

let quiescent t =
  Admission.size t.admission = 0
  && t.deferred = []
  && not (Engine.Stepper.has_work t.stepper)

let result t = Engine.Stepper.result t.stepper
let digest t = Run_digest.of_run (result t)

let set_journal t w = t.journal <- w

let retire t =
  let r = result t in
  Engine.Stepper.close t.stepper;
  Engine.record_event_histograms r.Engine.events;
  (match t.telemetry with Some tel -> Telemetry.on_retire tel | None -> ());
  (match t.journal with
  | Some w ->
      Journal.close_writer w;
      t.journal <- None
  | None -> ());
  r

(* One tick's admission + execution, with [arrivals] already journaled
   (or replayed). Deferred requests are re-offered ahead of fresh
   arrivals so Block cannot reorder a tenant's stream. *)
let execute_tick t arrivals =
  (match t.telemetry with
  | Some tel ->
      Telemetry.on_tick_start tel ~tick:t.tick_count ~now_s:(now_s t);
      (* Fresh arrivals only: deferred requests were stamped when first
         seen. *)
      List.iter (Telemetry.on_arrival tel) arrivals
  | None -> ());
  let candidates = t.deferred @ arrivals in
  t.deferred <- [];
  let deferred_rev = ref [] in
  List.iter
    (fun req ->
      let outcome = Admission.offer t.admission ~tick:t.tick_count req in
      (match t.telemetry with
      | Some tel -> Telemetry.on_admission tel req outcome
      | None -> ());
      match outcome with
      | Admission.Admitted -> Counters.incr Counters.Serve_admitted
      | Admission.Shed _ -> Counters.incr Counters.Serve_shed
      | Admission.Deferred ->
          Counters.incr Counters.Serve_deferred;
          deferred_rev := req :: !deferred_rev)
    candidates;
  t.deferred <- List.rev !deferred_rev;
  let drained = Admission.drain t.admission ~max:t.cfg.drain_per_tick in
  if drained <> [] then begin
    Counters.add Counters.Serve_drained (List.length drained);
    if Histogram.Registry.enabled () then
      List.iter
        (fun (_, enq_tick) ->
          Histogram.Registry.record "serve.admission_wait_s"
            (float_of_int (t.tick_count - enq_tick) *. t.cfg.tick_dt_s))
        drained;
    (match t.telemetry with
    | Some tel ->
        List.iter
          (fun (req, enq_tick) ->
            Telemetry.on_drain tel req ~wait_ticks:(t.tick_count - enq_tick))
          drained
    | None -> ());
    Engine.Stepper.submit t.stepper
      (List.map (fun (req, _) -> req.Request.event) drained)
  end;
  let steps = ref 0 in
  let continue = ref true in
  while !continue && !steps < t.cfg.steps_per_tick do
    match Engine.Stepper.step t.stepper with
    | `Stepped -> incr steps
    | `Idle -> continue := false
  done;
  if Histogram.Registry.enabled () then begin
    Histogram.Registry.record "serve.queue_depth"
      (float_of_int (Admission.size t.admission));
    Histogram.Registry.record "serve.engine_backlog"
      (float_of_int (Engine.Stepper.backlog t.stepper))
  end;
  (match t.telemetry with
  | Some tel ->
      Telemetry.on_tick_end tel ~tick:t.tick_count
        ~queue:(Admission.size t.admission)
        ~backlog:(Engine.Stepper.backlog t.stepper)
  | None -> ());
  Counters.incr Counters.Serve_ticks;
  t.tick_count <- t.tick_count + 1

let tick t =
  let arrivals = Source.poll t.source ~tick:t.tick_count ~now_s:(now_s t) in
  (match t.journal with
  | Some w ->
      (* Write-ahead: arrivals are durable before any decision acts on
         them; the Tick_done marker commits the tick afterwards. *)
      List.iter
        (fun req ->
          Journal.write w (Journal.Arrive { tick = t.tick_count; request = req }))
        arrivals;
      Journal.flush w
  | None -> ());
  execute_tick t arrivals;
  match t.journal with
  | Some w ->
      Journal.write w (Journal.Tick_done (t.tick_count - 1));
      Journal.flush w
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Checkpointing.                                                      *)

let snapshot t =
  {
    (* seq/parent are threaded in by [Checkpoint.Chain.save]. *)
    Checkpoint.tick = t.tick_count;
    seq = 0;
    parent = None;
    meta = fingerprint t.cfg t.source_spec;
    net = Net_state.freeze t.net;
    stepper = Engine.Stepper.freeze t.stepper;
    injector = Option.map Injector.freeze t.injector;
    admission = Admission.freeze t.admission;
    deferred = t.deferred;
    source = Source.freeze t.source;
  }

let save_checkpoint ?fault ?keep t path =
  let hash = Checkpoint.Chain.save ?fault ?keep path (snapshot t) in
  Counters.incr Counters.Serve_checkpoints;
  hash

let run ?checkpoint_path ?(checkpoint_every = 0) ~ticks t =
  for _ = 1 to ticks do
    tick t;
    match checkpoint_path with
    | Some path when checkpoint_every > 0 && t.tick_count mod checkpoint_every = 0
      ->
        ignore (save_checkpoint t path : string)
    | _ -> ()
  done

(* Completion ticks poll nothing and journal nothing: they are a pure
   function of controller state, so recovery reproduces them without
   any record. *)
let complete ?(max_ticks = 1_000_000) t =
  let n = ref 0 in
  while not (quiescent t) do
    if !n >= max_ticks then
      failwith
        (Printf.sprintf "Serve.complete: not quiescent after %d ticks"
           max_ticks);
    incr n;
    execute_tick t []
  done

(* ------------------------------------------------------------------ *)
(* Restore + replay.                                                   *)

let restore_snapshot ?source_params ?series ?telemetry ?retry ?check_invariants
    ~config:cfg ~source_spec ~topology cp =
  let* () = try Ok (validate_config cfg) with Invalid_argument m -> Error m in
  let expected = fingerprint cfg source_spec in
  if not (fingerprint_matches cp.Checkpoint.meta expected) then
    Error
      (Printf.sprintf
         "checkpoint configuration mismatch:\n  checkpoint: %s\n  requested:  %s"
         (Json.to_string cp.Checkpoint.meta)
         (Json.to_string expected))
  else
    match
      let host_count = Topology.host_count topology in
      let net = Net_state.thaw topology cp.Checkpoint.net in
      let injector =
        Option.map (Injector.thaw ?retry ?check_invariants) cp.Checkpoint.injector
      in
      let stepper =
        Engine.Stepper.thaw ~domains:cfg.domains
          ?churn:(engine_churn ~host_count cfg.churn)
          ~co_max_cost_mbit:cfg.co_max_cost_mbit
          ~estimate_cache:cfg.estimate_cache ?injector ?series
          ?observer:(Option.map Telemetry.observer telemetry)
          ~net cp.Checkpoint.stepper
      in
      let admission =
        Admission.thaw ~capacity:cfg.admission_capacity
          ~policy:cfg.admission_policy cp.Checkpoint.admission
      in
      let source =
        Source.thaw ?params:source_params ~host_count source_spec
          cp.Checkpoint.source
      in
      {
        cfg;
        topology;
        net;
        source_spec;
        source_params;
        source;
        admission;
        stepper;
        injector;
        telemetry;
        journal = None;
        deferred = cp.Checkpoint.deferred;
        tick_count = cp.Checkpoint.tick;
      }
    with
    | t -> Ok t
    | exception Invalid_argument m -> Error ("checkpoint restore: " ^ m)

let restore ?source_params ?series ?telemetry ?retry ?check_invariants
    ?fault ~config ~source_spec ~topology path =
  let* cp = Checkpoint.load ?fault ~graph:topology.Topology.graph path in
  restore_snapshot ?source_params ?series ?telemetry ?retry ?check_invariants
    ~config ~source_spec ~topology cp

let request_eq a b =
  Json.to_string (Codec.request_to_json a) = Json.to_string (Codec.request_to_json b)

let committed_groups ?upto t entries =
  List.filter
    (fun (k, _) ->
      k >= t.tick_count && match upto with None -> true | Some u -> k < u)
    (Journal.committed_ticks entries)

(* Strict: any gap or divergence is an error. *)
let replay_entries ?upto t entries =
  let rec go n = function
    | [] -> Ok n
    | (k, journaled) :: rest ->
        if k <> t.tick_count then
          Error
            (Printf.sprintf
               "journal gap: expected tick %d, found committed tick %d"
               t.tick_count k)
        else begin
          (* Re-poll to advance the deterministic source cursor, and
             validate it regenerates exactly what the journal recorded —
             the journaled requests stay authoritative either way. *)
          let polled = Source.poll t.source ~tick:t.tick_count ~now_s:(now_s t) in
          if
            List.length polled <> List.length journaled
            || not (List.for_all2 request_eq polled journaled)
          then
            Error
              (Printf.sprintf
                 "replay divergence at tick %d: source regenerated %d \
                  request(s), journal recorded %d (or contents differ)"
                 k (List.length polled) (List.length journaled))
          else begin
            execute_tick t journaled;
            go (n + 1) rest
          end
        end
  in
  go 0 (committed_groups ?upto t entries)

(* Tolerant: replay the longest clean prefix and stop at the first gap
   or divergence (corruption ate a frame there) — the remaining ticks
   are re-served live from the deterministic source. A stop rewinds
   the source to its pre-poll cursor, because the mismatched poll
   already consumed PRNG draws the live re-serve must make again. *)
let replay_prefix t entries =
  let host_count = Topology.host_count t.topology in
  let rec go n = function
    | [] -> (n, None)
    | (k, journaled) :: rest ->
        if k <> t.tick_count then
          (n, Some (Printf.sprintf "journal gap at tick %d (found %d)" t.tick_count k))
        else begin
          let fz = Source.freeze t.source in
          let polled = Source.poll t.source ~tick:t.tick_count ~now_s:(now_s t) in
          if
            List.length polled <> List.length journaled
            || not (List.for_all2 request_eq polled journaled)
          then begin
            t.source <-
              Source.thaw ?params:t.source_params ~host_count t.source_spec fz;
            (n, Some (Printf.sprintf "journal divergence at tick %d" k))
          end
          else begin
            execute_tick t journaled;
            go (n + 1) rest
          end
        end
  in
  go 0 (committed_groups t entries)

let replay ?upto ~journal t =
  let* report = Journal.read_report journal in
  if report.Journal.corrupt <> [] then
    Counters.add_named "store.frames_corrupt"
      (List.length report.Journal.corrupt);
  replay_entries ?upto t report.Journal.entries
