(** Append-only JSONL operation journal.

    The controller journals every arrival {e before} acting on it
    (write-ahead), and commits each tick with a [Tick_done] marker once
    the tick fully executed. Recovery = thaw the latest checkpoint,
    then re-drive the committed ticks recorded after it; a trailing
    uncommitted tick (crash mid-tick) is discarded — its arrivals are
    regenerated bit-identically by the deterministic source, or
    re-offered by the caller for external streams. *)

type entry =
  | Arrive of { tick : int; request : Request.t }
      (** A request surfaced at [tick], journaled before admission. *)
  | Tick_done of int  (** Commit marker: the tick completed. *)

val entry_to_json : entry -> Nu_obs.Json.t
val entry_of_json : Nu_obs.Json.t -> (entry, string) result

type writer

val open_writer : ?append:bool -> string -> writer
(** Truncates unless [append] (default false). *)

val write : writer -> entry -> unit
(** One JSONL line; not flushed (see {!flush}). Raises
    [Invalid_argument] on a closed writer. *)

val flush : writer -> unit
val close_writer : writer -> unit
val entries_written : writer -> int

val read : string -> (entry list, string) result
(** Whole journal in write order; blank lines skipped; malformed lines
    are errors (with line numbers). *)

val committed_ticks : entry list -> (int * Request.t list) list
(** The committed (tick, arrivals-in-journal-order) groups, in tick
    order; trailing uncommitted arrivals are dropped. *)
