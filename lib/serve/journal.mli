(** Durable write-ahead log for the serving loop.

    On-disk format ("NUWAL002"): a journal is a chain of segments —
    segment 0 is the journal path itself, segment [i > 0] is
    [path ^ ".seg" ^ i]; the newest segment has the highest index.
    Every segment starts with the 8-byte magic ["NUWAL002"], followed
    by frames back to back:

    {v 'N' 'J' | length u32-LE | crc32 u32-LE | payload (JSON entry) v}

    The CRC32 (IEEE 802.3, reflected) covers the payload only. The
    reader verifies every frame and {e skips} damage instead of dying
    on it: a bad CRC or implausible length costs the one frame (the
    scan resyncs on the next frame magic), a torn tail ends the
    segment, and every skip is reported as a {!corrupt_frame}. Journals
    written by the pre-WAL JSONL format are still readable.

    Entries are arrivals plus per-tick commit markers. A tick's
    arrivals are journaled and flushed {e before} the engine acts on
    them; [Tick_done t] commits the tick. On recovery, a trailing
    uncommitted tick is discarded and regenerated from the
    deterministic source. *)

type entry =
  | Arrive of { tick : int; request : Request.t }
      (** A request surfaced at [tick], journaled before admission. *)
  | Tick_done of int  (** Commit marker: the tick completed. *)

val entry_to_json : entry -> Nu_obs.Json.t
val entry_of_json : Nu_obs.Json.t -> (entry, string) result

val crc32 : string -> int
(** IEEE 802.3 reflected CRC32 of a string, in [0, 2^32). *)

val segment_path : string -> int -> string
(** [segment_path base i] is [base] for segment 0, [base ^ ".seg" ^ i]
    otherwise. *)

val default_segment_bytes : int
(** Rotation threshold (4 MiB). *)

(** {2 Writer} *)

type writer

val open_writer :
  ?append:bool ->
  ?segment_bytes:int ->
  ?fault:Nu_fault.Store_fault.t ->
  string ->
  writer
(** Open a journal for writing. [append] defaults to [false], which
    truncates segment 0 and removes stale higher segments; with
    [~append:true] the writer continues in the newest existing
    segment. All physical I/O is routed through [fault] when given. *)

val write : writer -> entry -> unit
(** Frame and append one entry, rotating to a new segment when the
    current one exceeds the segment size. Raises [Invalid_argument] on
    a closed writer. *)

val flush : writer -> unit
(** Flush and (logically) fsync the current segment. *)

val close_writer : writer -> unit

val abort_writer : writer -> unit
(** Crash-path close: release the channel without flushing, leaving
    the on-disk bytes exactly as the fault device left them. *)

val entries_written : writer -> int

(** {2 Reader} *)

type corrupt_frame = {
  cf_segment : int;
  cf_offset : int;
      (** Byte offset in the segment (line number if legacy). *)
  cf_reason : string;
}

type report = {
  entries : entry list;
      (** Every frame that decoded cleanly, in write order. *)
  corrupt : corrupt_frame list;
  frames : int;  (** Clean frames decoded. *)
  segments : int;  (** Segment files visited. *)
  legacy : bool;  (** True when the file was pre-WAL JSONL. *)
}

val report_to_json : report -> Nu_obs.Json.t
(** Corrupt-frame report artifact for the crash-storm harness. *)

val read_report :
  ?fault:Nu_fault.Store_fault.t -> string -> (report, string) result
(** Tolerant read of the whole segment chain. [Error] only for an
    unreadable segment-0 file; corruption is reported, not raised. *)

val read : string -> (entry list, string) result
(** [read_report] keeping just the clean entries. *)

(** {2 Interpretation} *)

val committed_ticks : entry list -> (int * Request.t list) list
(** The committed (tick, arrivals-in-journal-order) groups, in tick
    order; trailing uncommitted arrivals are dropped. *)

type commits = Empty | Committed of int

val last_commit : entry list -> commits
(** Highest committed tick, or [Empty] when the journal holds no commit
    marker at all — distinguishing "fresh/torn-to-nothing journal" from
    "committed through tick 0". *)
