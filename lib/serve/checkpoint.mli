(** Durable whole-controller checkpoint.

    A checkpoint is the atomic triple-plus of frozen component states:
    engine stepper, network, optional fault injector, admission queue,
    deferred requests and the arrival-source cursor, stamped with the
    controller tick it was taken at and an opaque caller [meta] blob
    (the serving configuration fingerprint, validated on restore).

    Saves are write-then-rename, so a crash mid-save never corrupts the
    previous checkpoint. Loads validate everything — format tag,
    version, field shapes, path resolvability — and return [Error]
    rather than trusting the file. *)

type t = {
  tick : int;  (** Controller tick the snapshot was taken after. *)
  meta : Nu_obs.Json.t;  (** Caller blob, echoed verbatim. *)
  net : Net_state.frozen;
  stepper : Engine.Stepper.frozen;
  injector : Nu_fault.Injector.frozen option;
  admission : Admission.frozen;
  deferred : Request.t list;  (** Requests the Block policy pushed back. *)
  source : Source.frozen;
}

val to_json : t -> Nu_obs.Json.t
val of_json : graph:Graph.t -> Nu_obs.Json.t -> (t, string) result

val save : string -> t -> unit
(** Atomic (write temp, rename over). *)

val load : graph:Graph.t -> string -> (t, string) result
