(** Durable whole-controller checkpoint, verified and chained.

    A checkpoint is the atomic bundle of frozen component states:
    engine stepper, network, optional fault injector, admission queue,
    deferred requests and the arrival-source cursor, stamped with the
    controller tick it was taken at and an opaque caller [meta] blob
    (the serving configuration fingerprint, validated on restore).

    On disk (format version 2) a checkpoint is one JSON object:
    {v { "format": ..., "version": 2, "hash": <fnv64 of core>, "core": {...} } v}
    The content hash covers the printed form of the core object and is
    re-verified on every load, so a flipped bit anywhere in the state
    is detected instead of thawed. Version-1 files (no hash) still
    load.

    Saves are write-then-rename with an fsync of the file before the
    rename and of the containing directory after it — atomic {e and}
    durable. Loads validate everything and return [Error] rather than
    trusting the file.

    {!Chain} keeps the last few generations on disk ([base] newest,
    [base.1] its parent, ...), each recording its parent's content
    hash, so recovery can fall back to the newest ancestor that still
    verifies. *)

type t = {
  tick : int;  (** Controller tick the snapshot was taken after. *)
  seq : int;  (** Chain sequence number (0 for a first/standalone save). *)
  parent : string option;
      (** Content hash of the previous chain generation, if any. *)
  meta : Nu_obs.Json.t;  (** Caller blob, echoed verbatim. *)
  net : Net_state.frozen;
  stepper : Engine.Stepper.frozen;
  injector : Nu_fault.Injector.frozen option;
  admission : Admission.frozen;
  deferred : Request.t list;  (** Requests the Block policy pushed back. *)
  source : Source.frozen;
}

val content_hash : t -> string
(** FNV-1a 64 hash (16 hex digits) of the serialised core state. *)

val to_json : t -> Nu_obs.Json.t
val of_json : graph:Graph.t -> Nu_obs.Json.t -> (t, string) result

val save : ?fault:Nu_fault.Store_fault.t -> string -> t -> string
(** Atomic durable save; returns the content hash. Physical I/O routes
    through [fault] when given. *)

val load :
  ?fault:Nu_fault.Store_fault.t ->
  graph:Graph.t ->
  string ->
  (t, string) result
(** Load and verify (format, version, content hash, field shapes). *)

(** Rotated generations of one checkpoint path. *)
module Chain : sig
  val default_keep : int
  (** Ancestors retained besides the newest (2). *)

  val gen_path : string -> int -> string
  (** [gen_path base i] is [base] for generation 0 (newest),
      [base ^ "." ^ i] otherwise. *)

  val save :
    ?fault:Nu_fault.Store_fault.t -> ?keep:int -> string -> t -> string
  (** Rotate generations (dropping the one beyond [keep]), then save
      [cp] as the new newest with [seq]/[parent] threaded from the
      previous newest. Returns the content hash. *)

  val existing : ?keep:int -> string -> (int * string) list
  (** The (generation, path) pairs present on disk, newest first. *)

  val fallback :
    ?fault:Nu_fault.Store_fault.t ->
    ?keep:int ->
    graph:Graph.t ->
    string ->
    (t * int, string) result
  (** Newest generation that loads and verifies, with its generation
      index (0 = newest) as the fallback depth. [Error] when no
      generation verifies, listing each failure. *)
end
