(** Arrival processes for the online controller.

    Two shapes, one interface:

    - {b Synthetic}: a seeded Poisson arrival process — each tick draws
      a Poisson-distributed number of update events, each carrying
      Benson-marginal install flows between uniformly drawn distinct
      hosts, attributed to tenants round-robin. Fully deterministic
      (every draw comes from one SplitMix64 stream), and therefore
      regenerable after a crash: a thawed source replays the exact
      arrivals the crashed run produced.
    - {b Stream}: a JSONL command file, one
      [{"tick": N, "tenant": "...", "event": {...}}] object per line,
      tick-sorted. Commands surface when the controller reaches their
      tick; events are re-stamped to the surfacing instant. Positional,
      so also deterministic and freezable (by cursor). *)

type spec =
  | Synthetic of {
      seed : int;
      rate_per_tick : float;  (** Mean events per tick. *)
      flows_per_event : int;
      tenants : string list;  (** Round-robin attribution; non-empty. *)
      first_event_id : int;
      first_flow_id : int;
    }
  | Stream of string  (** Path to the JSONL command file. *)

type t

val default_params : Benson_trace.params
(** Benson marginals with elephants capped at 100 Mbps demand — the
    batch scenario's update-flow parameters. *)

val create : ?params:Benson_trace.params -> host_count:int -> spec -> t
(** Raises [Invalid_argument] on bad parameters, an unreadable or
    malformed command file, or out-of-order ticks. *)

val poll : t -> tick:int -> now_s:float -> Request.t list
(** The requests surfacing at [tick], events stamped [arrival_s =
    now_s]. Advances the source cursor — deterministic, not
    idempotent. *)

val exhausted : t -> bool
(** True when a stream source has no further commands (synthetic
    sources never exhaust). *)

(** {2 Checkpoint freeze/thaw} *)

type frozen =
  | F_synthetic of {
      rng : int64;
      next_event_id : int;
      next_flow_id : int;
      tenant_cursor : int;
    }
  | F_stream of { pos : int }

val freeze : t -> frozen

val thaw :
  ?params:Benson_trace.params -> host_count:int -> spec -> frozen -> t
(** Rebuild from the same [spec] the original was created with; future
    {!poll}s produce bit-identical arrivals. Raises [Invalid_argument]
    when the frozen shape does not match the spec. *)

val frozen_to_json : frozen -> Nu_obs.Json.t
val frozen_of_json : Nu_obs.Json.t -> (frozen, string) result
