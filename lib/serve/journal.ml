module Json = Nu_obs.Json
module Store_fault = Nu_fault.Store_fault

let ( let* ) = Result.bind

type entry =
  | Arrive of { tick : int; request : Request.t }
  | Tick_done of int

let entry_to_json = function
  | Arrive { tick; request } ->
      Json.Obj
        [
          ("op", Json.String "arrive");
          ("tick", Json.Int tick);
          ("request", Codec.request_to_json request);
        ]
  | Tick_done tick ->
      Json.Obj [ ("op", Json.String "tick_done"); ("tick", Json.Int tick) ]

let entry_of_json j =
  let* op = Codec.string_field "op" j in
  match op with
  | "arrive" ->
      let* tick = Codec.int_field "tick" j in
      let* rj = Codec.field "request" j in
      let* request = Codec.request_of_json rj in
      Ok (Arrive { tick; request })
  | "tick_done" ->
      let* tick = Codec.int_field "tick" j in
      Ok (Tick_done tick)
  | op -> Error ("unknown journal op: " ^ op)

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3 reflected polynomial, table-driven).              *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int
          (Int32.logand
             (Int32.logxor !c (Int32.of_int (Char.code ch)))
             0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  (Int32.to_int (Int32.logxor !c 0xFFFFFFFFl)) land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Frame format.
   Segment  = "NUWAL002" header, then frames back to back.
   Frame    = 'N' 'J' | u32-LE payload length | u32-LE CRC32(payload)
              | payload (the entry's JSON). *)

let segment_magic = "NUWAL002"
let frame_header_bytes = 10

(* A corrupted length field must not swallow the rest of the segment:
   anything past this cap is treated as framing damage and resynced. *)
let max_frame_payload = 16 * 1024 * 1024

let add_le32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let rd_le32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let encode_frame payload =
  let b = Buffer.create (String.length payload + frame_header_bytes) in
  Buffer.add_char b 'N';
  Buffer.add_char b 'J';
  add_le32 b (String.length payload);
  add_le32 b (crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Writer: segment 0 is the journal path itself, later segments are
   path.segN — newest is the highest index, so a plain `--journal FILE`
   keeps working while long runs rotate.                               *)

let segment_path base i =
  if i = 0 then base else Printf.sprintf "%s.seg%d" base i

let default_segment_bytes = 4 * 1024 * 1024

type writer = {
  base : string;
  segment_bytes : int;
  fault : Store_fault.t option;
  mutable oc : out_channel;
  mutable seg_index : int;
  mutable seg_size : int;
  mutable entries : int;
  mutable closed : bool;
}

(* With a fault device attached, every append is OS-flushed immediately:
   durability is modelled by the device's durable/written accounting,
   not by channel buffering, so a simulated crash sees exactly the
   bytes the model says are on disk. *)
let emit w data =
  let path = segment_path w.base w.seg_index in
  (match w.fault with
  | None -> output_string w.oc data
  | Some f -> (
      match Store_fault.on_append f ~path data with
      | Store_fault.Write bytes ->
          output_string w.oc bytes;
          Stdlib.flush w.oc;
          Store_fault.note_written f ~path (String.length bytes)
      | Store_fault.Torn prefix ->
          output_string w.oc prefix;
          Stdlib.flush w.oc;
          Store_fault.note_written f ~path (String.length prefix);
          Store_fault.crash f ~reason:"torn write"));
  w.seg_size <- w.seg_size + String.length data

let remove_stale_segments base =
  let i = ref 1 in
  while Sys.file_exists (segment_path base !i) do
    Sys.remove (segment_path base !i);
    incr i
  done

let file_size path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  n

let open_writer ?(append = false) ?(segment_bytes = default_segment_bytes)
    ?fault path =
  if segment_bytes < String.length segment_magic + frame_header_bytes then
    invalid_arg "Journal.open_writer: segment_bytes too small";
  let fresh () =
    remove_stale_segments path;
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
    let w =
      {
        base = path;
        segment_bytes;
        fault;
        oc;
        seg_index = 0;
        seg_size = 0;
        entries = 0;
        closed = false;
      }
    in
    (match fault with
    | Some f -> Store_fault.register f ~path ~size:0
    | None -> ());
    emit w segment_magic;
    w
  in
  if not append then fresh ()
  else if not (Sys.file_exists path) then fresh ()
  else begin
    (* Continue in the newest (highest-index) segment. *)
    let rec highest i =
      if Sys.file_exists (segment_path path (i + 1)) then highest (i + 1)
      else i
    in
    let i = highest 0 in
    let p = segment_path path i in
    let size = file_size p in
    let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 p in
    (match fault with
    | Some f -> Store_fault.register f ~path:p ~size
    | None -> ());
    {
      base = path;
      segment_bytes;
      fault;
      oc;
      seg_index = i;
      seg_size = size;
      entries = 0;
      closed = false;
    }
  end

let rotate w =
  Stdlib.flush w.oc;
  (match w.fault with
  | Some f -> Store_fault.on_sync f ~path:(segment_path w.base w.seg_index)
  | None -> ());
  close_out w.oc;
  w.seg_index <- w.seg_index + 1;
  let p = segment_path w.base w.seg_index in
  w.oc <- open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 p;
  (match w.fault with
  | Some f -> Store_fault.register f ~path:p ~size:0
  | None -> ());
  w.seg_size <- 0;
  emit w segment_magic

let write w entry =
  if w.closed then invalid_arg "Journal.write: writer is closed";
  let frame = encode_frame (Json.to_string (entry_to_json entry)) in
  if
    w.seg_size + String.length frame > w.segment_bytes
    && w.seg_size > String.length segment_magic
  then rotate w;
  emit w frame;
  w.entries <- w.entries + 1

let flush w =
  if not w.closed then begin
    Stdlib.flush w.oc;
    match w.fault with
    | Some f -> Store_fault.on_sync f ~path:(segment_path w.base w.seg_index)
    | None -> ()
  end

let close_writer w =
  if not w.closed then begin
    flush w;
    w.closed <- true;
    close_out w.oc
  end

(* Crash-path close: drop the channel without touching the file again —
   the simulated-death state on disk must stay exactly as the fault
   device left it. *)
let abort_writer w =
  if not w.closed then begin
    w.closed <- true;
    close_out_noerr w.oc
  end

let entries_written w = w.entries

(* ------------------------------------------------------------------ *)
(* Tolerant reader.                                                    *)

type corrupt_frame = { cf_segment : int; cf_offset : int; cf_reason : string }

type report = {
  entries : entry list;
  corrupt : corrupt_frame list;
  frames : int;
  segments : int;
  legacy : bool;
}

let corrupt_frame_to_json cf =
  Json.Obj
    [
      ("segment", Json.Int cf.cf_segment);
      ("offset", Json.Int cf.cf_offset);
      ("reason", Json.String cf.cf_reason);
    ]

let report_to_json r =
  Json.Obj
    [
      ("frames", Json.Int r.frames);
      ("segments", Json.Int r.segments);
      ("legacy", Json.Bool r.legacy);
      ("corrupt", Json.List (List.map corrupt_frame_to_json r.corrupt));
    ]

(* Parse one segment's bytes. Good frames append through [k_entry];
   damage is reported through [k_corrupt] and the scan resyncs on the
   next frame magic, so one flipped byte costs one frame, not the
   journal suffix. A torn tail (frame header or payload past EOF) ends
   the segment — that is the normal crash-mid-append shape. *)
let parse_segment ~seg data k_entry k_corrupt =
  let len = String.length data in
  let frames = ref 0 in
  let magic_len = String.length segment_magic in
  let start =
    if len = 0 then len (* crash right after create: empty = no frames *)
    else if len < magic_len then begin
      k_corrupt { cf_segment = seg; cf_offset = 0; cf_reason = "torn segment header" };
      len
    end
    else if String.sub data 0 magic_len <> segment_magic then begin
      k_corrupt { cf_segment = seg; cf_offset = 0; cf_reason = "bad segment header" };
      len
    end
    else magic_len
  in
  let pos = ref start in
  let resync ~at ~from reason =
    k_corrupt { cf_segment = seg; cf_offset = at; cf_reason = reason };
    let i = ref (max from (at + 1)) in
    let found = ref (-1) in
    while !found < 0 && !i < len - 1 do
      if data.[!i] = 'N' && data.[!i + 1] = 'J' then found := !i else incr i
    done;
    pos := if !found >= 0 then !found else len
  in
  while !pos < len do
    let at = !pos in
    if len - at < frame_header_bytes then begin
      k_corrupt
        { cf_segment = seg; cf_offset = at; cf_reason = "torn frame header" };
      pos := len
    end
    else if not (data.[at] = 'N' && data.[at + 1] = 'J') then
      resync ~at ~from:(at + 1) "framing lost"
    else begin
      let plen = rd_le32 data (at + 2) in
      let crc = rd_le32 data (at + 6) in
      if plen < 0 || plen > max_frame_payload then
        resync ~at ~from:(at + 2) "implausible frame length"
      else if at + frame_header_bytes + plen > len then begin
        k_corrupt
          { cf_segment = seg; cf_offset = at; cf_reason = "torn frame payload" };
        pos := len
      end
      else begin
        let payload = String.sub data (at + frame_header_bytes) plen in
        if crc32 payload <> crc then
          (* The length field is untrusted once the CRC fails. *)
          resync ~at ~from:(at + 2) "crc mismatch"
        else begin
          (match
             let* j = Json.of_string payload in
             entry_of_json j
           with
          | Ok e ->
              k_entry e;
              incr frames
          | Error m ->
              k_corrupt
                {
                  cf_segment = seg;
                  cf_offset = at;
                  cf_reason = "payload decode: " ^ m;
                });
          pos := at + frame_header_bytes + plen
        end
      end
    end
  done;
  !frames

(* Pre-WAL (JSONL) journals still load: one entry per line, and a torn
   or malformed tail is reported instead of erroring the whole read. *)
let parse_legacy data k_entry k_corrupt =
  let frames = ref 0 in
  let lines = String.split_on_char '\n' data in
  let stop = ref false in
  List.iteri
    (fun i line ->
      if (not !stop) && String.trim line <> "" then
        match
          let* j = Json.of_string line in
          entry_of_json j
        with
        | Ok e ->
            k_entry e;
            incr frames
        | Error m ->
            k_corrupt
              {
                cf_segment = 0;
                cf_offset = i + 1;
                cf_reason = Printf.sprintf "line %d: %s" (i + 1) m;
              };
            stop := true)
    lines;
  !frames

let read_whole ?fault path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Ok
        (match fault with
        | None -> data
        | Some f -> Store_fault.on_read f ~path data)

let read_report ?fault path =
  let* data0 = read_whole ?fault path in
  let entries_rev = ref [] in
  let corrupt_rev = ref [] in
  let k_entry e = entries_rev := e :: !entries_rev in
  let k_corrupt c = corrupt_rev := c :: !corrupt_rev in
  let magic_len = String.length segment_magic in
  let legacy =
    String.length data0 > 0
    && (String.length data0 < magic_len
       || String.sub data0 0 magic_len <> segment_magic)
    && data0.[0] = '{'
  in
  let frames = ref 0 in
  let segments = ref 1 in
  if legacy then frames := parse_legacy data0 k_entry k_corrupt
  else begin
    frames := parse_segment ~seg:0 data0 k_entry k_corrupt;
    let i = ref 1 in
    let continue = ref true in
    while !continue do
      let p = segment_path path !i in
      if not (Sys.file_exists p) then continue := false
      else begin
        (match read_whole ?fault p with
        | Error _ -> ()
        | Ok data -> frames := !frames + parse_segment ~seg:!i data k_entry k_corrupt);
        incr segments;
        incr i
      end
    done
  end;
  Ok
    {
      entries = List.rev !entries_rev;
      corrupt = List.rev !corrupt_rev;
      frames = !frames;
      segments = !segments;
      legacy;
    }

let read path =
  let* r = read_report path in
  Ok r.entries

(* Group a journal into completed ticks. Entries for one tick are its
   [Arrive]s followed by the [Tick_done] commit marker; a trailing run
   of [Arrive]s without a marker is a tick that crashed mid-flight and
   is discarded — on resume the deterministic source regenerates those
   arrivals exactly. *)
let committed_ticks entries =
  let rec go cur acc = function
    | [] -> List.rev acc
    | Arrive { tick; request } :: rest -> go ((tick, request) :: cur) acc rest
    | Tick_done tick :: rest ->
        let mine =
          List.rev_map snd (List.filter (fun (t, _) -> t = tick) cur)
        in
        let others = List.filter (fun (t, _) -> t <> tick) cur in
        go others ((tick, mine) :: acc) rest
  in
  go [] [] entries

type commits = Empty | Committed of int

let last_commit entries =
  List.fold_left
    (fun acc e ->
      match e with
      | Tick_done t -> (
          match acc with
          | Empty -> Committed t
          | Committed u -> Committed (max t u))
      | Arrive _ -> acc)
    Empty entries
