module Json = Nu_obs.Json

let ( let* ) = Result.bind

type entry =
  | Arrive of { tick : int; request : Request.t }
  | Tick_done of int

let entry_to_json = function
  | Arrive { tick; request } ->
      Json.Obj
        [
          ("op", Json.String "arrive");
          ("tick", Json.Int tick);
          ("request", Codec.request_to_json request);
        ]
  | Tick_done tick ->
      Json.Obj [ ("op", Json.String "tick_done"); ("tick", Json.Int tick) ]

let entry_of_json j =
  let* op = Codec.string_field "op" j in
  match op with
  | "arrive" ->
      let* tick = Codec.int_field "tick" j in
      let* rj = Codec.field "request" j in
      let* request = Codec.request_of_json rj in
      Ok (Arrive { tick; request })
  | "tick_done" ->
      let* tick = Codec.int_field "tick" j in
      Ok (Tick_done tick)
  | op -> Error ("unknown journal op: " ^ op)

type writer = { oc : out_channel; mutable entries : int; mutable closed : bool }

let open_writer ?(append = false) path =
  let flags =
    if append then [ Open_wronly; Open_creat; Open_append ]
    else [ Open_wronly; Open_creat; Open_trunc ]
  in
  { oc = open_out_gen flags 0o644 path; entries = 0; closed = false }

let write w entry =
  if w.closed then invalid_arg "Journal.write: writer is closed";
  output_string w.oc (Json.to_string (entry_to_json entry));
  output_char w.oc '\n';
  w.entries <- w.entries + 1

let flush w = if not w.closed then flush w.oc

let close_writer w =
  if not w.closed then begin
    w.closed <- true;
    close_out w.oc
  end

let entries_written w = w.entries

let read path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file ->
            close_in ic;
            Ok (List.rev acc)
        | line when String.trim line = "" -> go (lineno + 1) acc
        | line -> (
            match Json.of_string line with
            | Error msg ->
                close_in ic;
                Error (Printf.sprintf "%s:%d: %s" path lineno msg)
            | Ok j -> (
                match entry_of_json j with
                | Error msg ->
                    close_in ic;
                    Error (Printf.sprintf "%s:%d: %s" path lineno msg)
                | Ok e -> go (lineno + 1) (e :: acc)))
      in
      go 1 []

(* Group a journal into completed ticks. Entries for one tick are its
   [Arrive]s followed by the [Tick_done] commit marker; a trailing run
   of [Arrive]s without a marker is a tick that crashed mid-flight and
   is discarded — on resume the deterministic source regenerates those
   arrivals exactly. *)
let committed_ticks entries =
  let rec go cur acc = function
    | [] -> List.rev acc
    | Arrive { tick; request } :: rest -> go ((tick, request) :: cur) acc rest
    | Tick_done tick :: rest ->
        let mine =
          List.rev_map snd (List.filter (fun (t, _) -> t = tick) cur)
        in
        let others = List.filter (fun (t, _) -> t <> tick) cur in
        go others ((tick, mine) :: acc) rest
  in
  go [] [] entries
