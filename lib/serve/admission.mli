(** Bounded admission queue with backpressure and per-tenant fairness.

    The online controller's front door: arriving requests are offered
    to a bounded queue; what happens when the queue is full is the
    {!policy}. Draining is fair across tenants — one request per tenant
    per rotation sweep — so a single chatty tenant cannot starve the
    others regardless of arrival interleaving (the serving-layer
    complement of LMTF's per-event fairness).

    Deterministic by construction: rotation order is tenant first-seen
    order, every decision depends only on prior offers/drains, and
    {!freeze}/{!thaw} capture the full state for checkpointing. *)

type policy =
  | Block  (** Full queue defers the request to the next tick. *)
  | Drop_newest  (** Full queue sheds the arriving request. *)
  | Drop_oldest
      (** Full queue evicts the globally oldest queued request, then
          admits the arrival. *)
  | Tenant_quota of int
      (** Per-tenant queue cap; a tenant at its quota sheds regardless
          of global occupancy, a full queue sheds like [Drop_newest]. *)

val policy_name : policy -> string
(** ["block"], ["drop-newest"], ["drop-oldest"], ["tenant-quota(N)"]. *)

val policy_of_name : string -> (policy, string) result
(** Inverse of {!policy_name} (case-insensitive). *)

type t

val create : capacity:int -> policy:policy -> t
(** Raises [Invalid_argument] on non-positive capacity or quota. *)

val capacity : t -> int
val policy : t -> policy
val size : t -> int
(** Requests currently queued across all tenants. *)

type outcome =
  | Admitted
  | Shed of string  (** Reason: ["capacity"] or ["tenant-quota"]. *)
  | Deferred  (** Try again next tick (Block policy only). *)

val offer : t -> tick:int -> Request.t -> outcome
(** Offer one request, recording [tick] as its enqueue instant for
    admission-latency accounting. Updates per-tenant statistics. *)

val drain : t -> max:int -> (Request.t * int) list
(** Dequeue up to [max] requests fairly (round-robin across tenants in
    rotation order, one per tenant per sweep). Each result carries the
    tick recorded at {!offer} time. Raises [Invalid_argument] on
    negative [max]. *)

val tenant_stats : t -> (string * (int * int * int)) list
(** Per tenant (sorted): (admitted, shed, drained) counts. *)

val total_shed : t -> int

(** {2 Checkpoint freeze/thaw} *)

type frozen = {
  fz_next_seq : int;
  fz_tenants : string list;  (** Rotation order at freeze time. *)
  fz_queues : (string * (int * int * Request.t) list) list;
      (** Per tenant in rotation order; entries (seq, enq_tick,
          request) in queue order. *)
  fz_stats : (string * (int * int * int)) list;  (** Tenant-sorted. *)
}

val freeze : t -> frozen

val thaw : capacity:int -> policy:policy -> frozen -> t
(** Rebuild with the original configuration; future offers and drains
    behave bit-identically to the frozen original. *)
