(** JSON codecs for the online controller's durable state.

    Every encoder/decoder pair round-trips bit-exactly for the values
    the controller persists: finite floats serialise through
    {!Nu_obs.Json.Float} (whose repr is checked to re-parse to the same
    double), 64-bit PRNG cursors travel as decimal strings, and paths
    serialise as node lists resolved back against the topology's graph
    at load time. Decoders return [Error msg] on malformed input —
    checkpoints and journals are validated, never trusted. *)

module Json := Nu_obs.Json

val fnv64_hex : string -> string
(** FNV-1a 64-bit hash of the bytes, printed as 16 lowercase hex
    digits — the checkpoint content hash. *)

val field : string -> Json.t -> (Json.t, string) result
val opt_field : string -> Json.t -> Json.t option
val as_int : Json.t -> (int, string) result
val as_float : Json.t -> (float, string) result
(** Accepts [Int] too: an integral-valued float prints without a
    decimal point and re-parses as [Int]; the double is identical. *)

val as_string : Json.t -> (string, string) result
val as_list : Json.t -> (Json.t list, string) result
val int_field : string -> Json.t -> (int, string) result
val float_field : string -> Json.t -> (float, string) result
val string_field : string -> Json.t -> (string, string) result
val list_field : string -> Json.t -> (Json.t list, string) result
val map_m : ('a -> ('b, string) result) -> 'a list -> ('b list, string) result

val int64_to_json : int64 -> Json.t
val int64_of_json : Json.t -> (int64, string) result

val flow_to_json : Flow_record.t -> Json.t
val flow_of_json : Json.t -> (Flow_record.t, string) result

val event_to_json : Event.t -> Json.t
val event_of_json : Json.t -> (Event.t, string) result

val request_to_json : Request.t -> Json.t
val request_of_json : Json.t -> (Request.t, string) result

val policy_to_json : Policy.t -> Json.t
val policy_of_json : Json.t -> (Policy.t, string) result

val fault_to_json : Nu_fault.Fault_model.fault -> Json.t
val fault_of_json : Json.t -> (Nu_fault.Fault_model.fault, string) result

val injector_frozen_to_json : Nu_fault.Injector.frozen -> Json.t

val injector_frozen_of_json :
  Json.t -> (Nu_fault.Injector.frozen, string) result

val path_to_json : Path.t -> Json.t
val path_of_json : Graph.t -> Json.t -> (Path.t, string) result

val net_frozen_to_json : Net_state.frozen -> Json.t

val net_frozen_of_json :
  Graph.t -> Json.t -> (Net_state.frozen, string) result
(** Paths are re-resolved against [Graph.t]; an edge-less hop is a
    decode error. *)

val event_result_to_json : Engine.event_result -> Json.t
val event_result_of_json : Json.t -> (Engine.event_result, string) result

val round_info_to_json : Engine.round_info -> Json.t
val round_info_of_json : Json.t -> (Engine.round_info, string) result

val stepper_frozen_to_json : Engine.Stepper.frozen -> Json.t
val stepper_frozen_of_json : Json.t -> (Engine.Stepper.frozen, string) result

val admission_frozen_to_json : Admission.frozen -> Json.t
val admission_frozen_of_json : Json.t -> (Admission.frozen, string) result
