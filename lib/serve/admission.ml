type policy =
  | Block
  | Drop_newest
  | Drop_oldest
  | Tenant_quota of int

let policy_name = function
  | Block -> "block"
  | Drop_newest -> "drop-newest"
  | Drop_oldest -> "drop-oldest"
  | Tenant_quota q -> Printf.sprintf "tenant-quota(%d)" q

let policy_of_name s =
  match String.lowercase_ascii s with
  | "block" -> Ok Block
  | "drop-newest" -> Ok Drop_newest
  | "drop-oldest" -> Ok Drop_oldest
  | s -> (
      match Scanf.sscanf_opt s "tenant-quota(%d)" (fun q -> q) with
      | Some q when q > 0 -> Ok (Tenant_quota q)
      | Some _ -> Error "tenant quota must be positive"
      | None -> Error (Printf.sprintf "unknown admission policy %S" s))

type entry = { seq : int; enq_tick : int; request : Request.t }

type stat = {
  mutable admitted : int;
  mutable shed : int;
  mutable drained : int;
}

type t = {
  capacity : int;
  policy : policy;
  mutable tenants : string list;  (* drain rotation, head drains next *)
  queues : (string, entry Queue.t) Hashtbl.t;
  stats : (string, stat) Hashtbl.t;
  mutable size : int;
  mutable next_seq : int;
}

let create ~capacity ~policy =
  if capacity <= 0 then invalid_arg "Admission.create: capacity must be > 0";
  (match policy with
  | Tenant_quota q when q <= 0 ->
      invalid_arg "Admission.create: tenant quota must be > 0"
  | _ -> ());
  {
    capacity;
    policy;
    tenants = [];
    queues = Hashtbl.create 16;
    stats = Hashtbl.create 16;
    size = 0;
    next_seq = 0;
  }

let capacity t = t.capacity
let policy t = t.policy
let size t = t.size

let stat_for t tenant =
  match Hashtbl.find_opt t.stats tenant with
  | Some s -> s
  | None ->
      let s = { admitted = 0; shed = 0; drained = 0 } in
      Hashtbl.replace t.stats tenant s;
      s

let queue_for t tenant =
  match Hashtbl.find_opt t.queues tenant with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.queues tenant q;
      (* New tenants join at the back of the rotation: first-seen order
         is deterministic and replay-stable. *)
      t.tenants <- t.tenants @ [ tenant ];
      q

let enqueue t ~tick req =
  let q = queue_for t req.Request.tenant in
  Queue.push { seq = t.next_seq; enq_tick = tick; request = req } q;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1

(* The globally oldest queued entry (smallest admission sequence): only
   queue heads can hold it, so the scan is O(tenants). *)
let oldest_tenant t =
  List.fold_left
    (fun acc tenant ->
      match Hashtbl.find_opt t.queues tenant with
      | None -> acc
      | Some q -> (
          match Queue.peek_opt q with
          | None -> acc
          | Some e -> (
              match acc with
              | Some (best, _) when best.seq <= e.seq -> acc
              | _ -> Some (e, tenant))))
    None t.tenants

type outcome = Admitted | Shed of string | Deferred

let offer t ~tick req =
  let tenant = req.Request.tenant in
  let st = stat_for t tenant in
  let over_quota =
    match t.policy with
    | Tenant_quota q -> (
        match Hashtbl.find_opt t.queues tenant with
        | Some tq -> Queue.length tq >= q
        | None -> q = 0)
    | _ -> false
  in
  if over_quota then begin
    st.shed <- st.shed + 1;
    Shed "tenant-quota"
  end
  else if t.size < t.capacity then begin
    enqueue t ~tick req;
    st.admitted <- st.admitted + 1;
    Admitted
  end
  else
    match t.policy with
    | Block -> Deferred
    | Drop_newest | Tenant_quota _ ->
        st.shed <- st.shed + 1;
        Shed "capacity"
    | Drop_oldest -> (
        match oldest_tenant t with
        | None ->
            (* capacity > 0 and size >= capacity imply a queued entry *)
            assert false
        | Some (victim, vtenant) ->
            let vq = Hashtbl.find t.queues vtenant in
            ignore (Queue.pop vq);
            t.size <- t.size - 1;
            let vstat = stat_for t vtenant in
            vstat.shed <- vstat.shed + 1;
            ignore victim;
            enqueue t ~tick req;
            st.admitted <- st.admitted + 1;
            Admitted)

(* Fair drain: one request per tenant per rotation sweep, starting from
   the rotation head; the rotation advances past every tenant visited,
   so no tenant is served twice before all backlogged tenants are served
   once. *)
let drain t ~max =
  if max < 0 then invalid_arg "Admission.drain: negative max";
  let out = ref [] in
  let taken = ref 0 in
  let continue = ref (max > 0 && t.size > 0) in
  while !continue do
    let swept = ref 0 in
    let progressed = ref false in
    let n_tenants = List.length t.tenants in
    while !taken < max && t.size > 0 && !swept < n_tenants do
      match t.tenants with
      | [] -> swept := n_tenants
      | tenant :: rest ->
          t.tenants <- rest @ [ tenant ];
          incr swept;
          (match Hashtbl.find_opt t.queues tenant with
          | None -> ()
          | Some q -> (
              match Queue.pop q with
              | exception Queue.Empty -> ()
              | e ->
                  t.size <- t.size - 1;
                  incr taken;
                  progressed := true;
                  let s = stat_for t tenant in
                  s.drained <- s.drained + 1;
                  out := (e.request, e.enq_tick) :: !out))
    done;
    continue := !progressed && !taken < max && t.size > 0
  done;
  List.rev !out

let tenant_stats t =
  List.sort compare
    (Hashtbl.fold
       (fun tenant s acc -> (tenant, (s.admitted, s.shed, s.drained)) :: acc)
       t.stats [])

let total_shed t =
  Hashtbl.fold (fun _ s acc -> acc + s.shed) t.stats 0

(* ------------------------------------------------------------------ *)
(* Freeze/thaw.                                                        *)

type frozen = {
  fz_next_seq : int;
  fz_tenants : string list;  (* rotation order at freeze time *)
  fz_queues : (string * (int * int * Request.t) list) list;
      (* per tenant in rotation order; entries (seq, enq_tick, request)
         in queue order *)
  fz_stats : (string * (int * int * int)) list;  (* tenant-sorted *)
}

let freeze t =
  {
    fz_next_seq = t.next_seq;
    fz_tenants = t.tenants;
    fz_queues =
      List.map
        (fun tenant ->
          let entries =
            match Hashtbl.find_opt t.queues tenant with
            | None -> []
            | Some q ->
                List.rev
                  (Queue.fold
                     (fun acc e -> (e.seq, e.enq_tick, e.request) :: acc)
                     [] q)
          in
          (tenant, entries))
        t.tenants;
    fz_stats = tenant_stats t;
  }

let thaw ~capacity ~policy fz =
  let t = create ~capacity ~policy in
  t.next_seq <- fz.fz_next_seq;
  List.iter
    (fun (tenant, entries) ->
      let q = queue_for t tenant in
      List.iter
        (fun (seq, enq_tick, request) ->
          Queue.push { seq; enq_tick; request } q;
          t.size <- t.size + 1)
        entries)
    fz.fz_queues;
  (* queue_for appended tenants in fz_queues order = rotation order *)
  List.iter
    (fun (tenant, (admitted, shed, drained)) ->
      let s = stat_for t tenant in
      s.admitted <- admitted;
      s.shed <- shed;
      s.drained <- drained)
    fz.fz_stats;
  t
