module Json = Nu_obs.Json
module Injector = Nu_fault.Injector

let ( let* ) = Result.bind

let format_tag = "nu_serve_checkpoint"
let version = 1

type t = {
  tick : int;
  meta : Json.t;
  net : Net_state.frozen;
  stepper : Engine.Stepper.frozen;
  injector : Injector.frozen option;
  admission : Admission.frozen;
  deferred : Request.t list;
  source : Source.frozen;
}

let to_json cp =
  Json.Obj
    [
      ("format", Json.String format_tag);
      ("version", Json.Int version);
      ("tick", Json.Int cp.tick);
      ("meta", cp.meta);
      ("net", Codec.net_frozen_to_json cp.net);
      ("stepper", Codec.stepper_frozen_to_json cp.stepper);
      ( "injector",
        match cp.injector with
        | None -> Json.Null
        | Some fz -> Codec.injector_frozen_to_json fz );
      ("admission", Codec.admission_frozen_to_json cp.admission);
      ( "deferred",
        Json.List (List.map Codec.request_to_json cp.deferred) );
      ("source", Source.frozen_to_json cp.source);
    ]

let of_json ~graph j =
  let* tag = Codec.string_field "format" j in
  if tag <> format_tag then Error (Printf.sprintf "not a checkpoint: %S" tag)
  else
    let* v = Codec.int_field "version" j in
    if v <> version then
      Error (Printf.sprintf "unsupported checkpoint version %d" v)
    else
      let* tick = Codec.int_field "tick" j in
      let meta = Option.value (Codec.opt_field "meta" j) ~default:Json.Null in
      let* nj = Codec.field "net" j in
      let* net = Codec.net_frozen_of_json graph nj in
      let* sj = Codec.field "stepper" j in
      let* stepper = Codec.stepper_frozen_of_json sj in
      let* injector =
        match Codec.opt_field "injector" j with
        | None | Some Json.Null -> Ok None
        | Some ij ->
            let* fz = Codec.injector_frozen_of_json ij in
            Ok (Some fz)
      in
      let* aj = Codec.field "admission" j in
      let* admission = Codec.admission_frozen_of_json aj in
      let* dl = Codec.list_field "deferred" j in
      let* deferred = Codec.map_m Codec.request_of_json dl in
      let* srcj = Codec.field "source" j in
      let* source = Source.frozen_of_json srcj in
      Ok { tick; meta; net; stepper; injector; admission; deferred; source }

(* Write-then-rename: a crash mid-save leaves the previous checkpoint
   intact, never a torn file. *)
let save path cp =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Json.to_string (to_json cp));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let load ~graph path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
      let* j = Json.of_string (String.trim contents) in
      of_json ~graph j
