module Json = Nu_obs.Json
module Injector = Nu_fault.Injector
module Store_fault = Nu_fault.Store_fault

let ( let* ) = Result.bind

let format_tag = "nu_serve_checkpoint"
let version = 2

type t = {
  tick : int;
  seq : int;
  parent : string option;
  meta : Json.t;
  net : Net_state.frozen;
  stepper : Engine.Stepper.frozen;
  injector : Injector.frozen option;
  admission : Admission.frozen;
  deferred : Request.t list;
  source : Source.frozen;
}

(* The "core" object is everything the content hash covers. Hashing
   the printed form is sound because print∘parse is canonical for this
   Json library (the fingerprint comparison below already relies on
   that), so a loaded core re-serialises to the byte-identical string
   that was hashed at save time. *)
let core_to_json cp =
  Json.Obj
    [
      ("tick", Json.Int cp.tick);
      ("seq", Json.Int cp.seq);
      ( "parent",
        match cp.parent with None -> Json.Null | Some h -> Json.String h );
      ("meta", cp.meta);
      ("net", Codec.net_frozen_to_json cp.net);
      ("stepper", Codec.stepper_frozen_to_json cp.stepper);
      ( "injector",
        match cp.injector with
        | None -> Json.Null
        | Some fz -> Codec.injector_frozen_to_json fz );
      ("admission", Codec.admission_frozen_to_json cp.admission);
      ("deferred", Json.List (List.map Codec.request_to_json cp.deferred));
      ("source", Source.frozen_to_json cp.source);
    ]

let content_hash cp = Codec.fnv64_hex (Json.to_string (core_to_json cp))

let to_json cp =
  Json.Obj
    [
      ("format", Json.String format_tag);
      ("version", Json.Int version);
      ("hash", Json.String (content_hash cp));
      ("core", core_to_json cp);
    ]

let core_of_json ~graph j =
  let* tick = Codec.int_field "tick" j in
  let seq =
    match Codec.opt_field "seq" j with Some (Json.Int s) -> s | _ -> 0
  in
  let parent =
    match Codec.opt_field "parent" j with
    | Some (Json.String h) -> Some h
    | _ -> None
  in
  let meta = Option.value (Codec.opt_field "meta" j) ~default:Json.Null in
  let* nj = Codec.field "net" j in
  let* net = Codec.net_frozen_of_json graph nj in
  let* sj = Codec.field "stepper" j in
  let* stepper = Codec.stepper_frozen_of_json sj in
  let* injector =
    match Codec.opt_field "injector" j with
    | None | Some Json.Null -> Ok None
    | Some ij ->
        let* fz = Codec.injector_frozen_of_json ij in
        Ok (Some fz)
  in
  let* aj = Codec.field "admission" j in
  let* admission = Codec.admission_frozen_of_json aj in
  let* dl = Codec.list_field "deferred" j in
  let* deferred = Codec.map_m Codec.request_of_json dl in
  let* srcj = Codec.field "source" j in
  let* source = Source.frozen_of_json srcj in
  Ok { tick; seq; parent; meta; net; stepper; injector; admission; deferred; source }

let of_json ~graph j =
  let* tag = Codec.string_field "format" j in
  if tag <> format_tag then Error (Printf.sprintf "not a checkpoint: %S" tag)
  else
    let* v = Codec.int_field "version" j in
    match v with
    | 1 ->
        (* v1: core fields at top level, no content hash. *)
        core_of_json ~graph j
    | 2 ->
        let* claimed = Codec.string_field "hash" j in
        let* core = Codec.field "core" j in
        let actual = Codec.fnv64_hex (Json.to_string core) in
        if claimed <> actual then
          Error
            (Printf.sprintf "checkpoint content hash mismatch: file says %s, core hashes to %s"
               claimed actual)
        else core_of_json ~graph core
    | v -> Error (Printf.sprintf "unsupported checkpoint version %d" v)

(* Best-effort: directory fsync is what makes a rename survive power
   loss, but not every filesystem hands out directory fds. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

(* Write-then-rename: a crash mid-save leaves the previous checkpoint
   intact, never a torn file. The file is fsynced before the rename
   and the directory after it, so the swap is durable, not just
   atomic. All physical steps route through [fault] when present. *)
let save ?fault path cp =
  let tmp = path ^ ".tmp" in
  let data = Json.to_string (to_json cp) ^ "\n" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 tmp in
  (match fault with
  | None ->
      output_string oc data;
      flush oc;
      (try Unix.fsync (Unix.descr_of_out_channel oc)
       with Unix.Unix_error _ -> ());
      close_out oc
  | Some f -> (
      Store_fault.register f ~path:tmp ~size:0;
      match Store_fault.on_append f ~path:tmp data with
      | Store_fault.Write bytes ->
          output_string oc bytes;
          flush oc;
          Store_fault.note_written f ~path:tmp (String.length bytes);
          Store_fault.on_sync f ~path:tmp;
          close_out oc
      | Store_fault.Torn prefix ->
          output_string oc prefix;
          flush oc;
          Store_fault.note_written f ~path:tmp (String.length prefix);
          close_out_noerr oc;
          Store_fault.crash f ~reason:"torn checkpoint write"));
  Sys.rename tmp path;
  (match fault with
  | Some f -> Store_fault.note_rename f ~src:tmp ~dst:path
  | None -> ());
  fsync_dir path;
  content_hash cp

let load ?fault ~graph path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
      let contents =
        match fault with
        | None -> contents
        | Some f -> Store_fault.on_read f ~path contents
      in
      let* j = Json.of_string (String.trim contents) in
      of_json ~graph j

(* ------------------------------------------------------------------ *)
(* Verified checkpoint chain: [base] is the newest generation,
   [base.1] its parent, ... up to [keep] ancestors.                    *)

module Chain = struct
  let default_keep = 2

  let gen_path base i = if i = 0 then base else Printf.sprintf "%s.%d" base i

  (* Outer header of an existing file, without decoding the core:
     enough to thread seq/parent into the next save. Any damage reads
     as "no usable header". *)
  let peek_header path =
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ -> None
    | contents -> (
        match Json.of_string (String.trim contents) with
        | Error _ -> None
        | Ok j -> (
            match
              (Codec.opt_field "hash" j, Codec.opt_field "core" j)
            with
            | Some (Json.String h), Some core -> (
                match Codec.opt_field "seq" core with
                | Some (Json.Int s) -> Some (s, h)
                | _ -> None)
            | _ -> None))

  (* Oldest-first renames keep the rotation crash-safe: if we die
     mid-way, the previous newest checkpoint still exists at [base]
     or [base.1], where fallback looks first. *)
  let rotate ?fault ~keep base =
    let drop = gen_path base keep in
    if Sys.file_exists drop then Sys.remove drop;
    for i = keep - 1 downto 0 do
      let src = gen_path base i in
      if Sys.file_exists src then begin
        let dst = gen_path base (i + 1) in
        Sys.rename src dst;
        match fault with
        | Some f -> Store_fault.note_rename f ~src ~dst
        | None -> ()
      end
    done;
    fsync_dir base

  let save ?fault ?(keep = default_keep) base cp =
    let seq, parent =
      match peek_header base with
      | Some (s, h) -> (s + 1, Some h)
      | None -> (0, None)
    in
    rotate ?fault ~keep base;
    save ?fault base { cp with seq; parent }

  let existing ?(keep = default_keep) base =
    List.filter_map
      (fun i ->
        let p = gen_path base i in
        if Sys.file_exists p then Some (i, p) else None)
      (List.init (keep + 1) Fun.id)

  (* Newest generation that loads AND verifies; its generation index
     is the fallback depth (0 = newest). *)
  let fallback ?fault ?(keep = default_keep) ~graph base =
    let rec go errs i =
      if i > keep then
        Error
          (Printf.sprintf "no verifiable checkpoint in chain %s (%s)" base
             (String.concat "; " (List.rev errs)))
      else
        let p = gen_path base i in
        if not (Sys.file_exists p) then
          go (Printf.sprintf "%s: missing" p :: errs) (i + 1)
        else
          match load ?fault ~graph p with
          | Ok cp -> Ok (cp, i)
          | Error e -> go (Printf.sprintf "%s: %s" p e :: errs) (i + 1)
    in
    go [] 0
end
