module Json = Nu_obs.Json
module Injector = Nu_fault.Injector
module Fault_model = Nu_fault.Fault_model

let ( let* ) = Result.bind

(* FNV-1a over the bytes of a string; same constants as
   [Nu_fault.Recovery] so every digest in the repo prints the same
   16-hex-digit shape. *)
let fnv64_hex s =
  let prime = 0x100000001b3L and basis = 0xcbf29ce484222325L in
  let h =
    String.fold_left
      (fun h c -> Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) prime)
      basis s
  in
  Printf.sprintf "%016Lx" h

(* ------------------------------------------------------------------ *)
(* Decoding combinators.                                               *)

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_field name j = Json.member name j

let as_int = function
  | Json.Int i -> Ok i
  | j -> Error ("expected int, got " ^ Json.to_string j)

let as_bool = function
  | Json.Bool b -> Ok b
  | j -> Error ("expected bool, got " ^ Json.to_string j)

(* Floats whose value is integral print without a decimal point and
   parse back as [Int]; both shapes decode to the identical double
   (integers below 1e15 are exactly representable). *)
let as_float = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | j -> Error ("expected number, got " ^ Json.to_string j)

let as_string = function
  | Json.String s -> Ok s
  | j -> Error ("expected string, got " ^ Json.to_string j)

let as_list = function
  | Json.List l -> Ok l
  | j -> Error ("expected list, got " ^ Json.to_string j)

let map_m f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
        let* y = f x in
        go (y :: acc) rest
  in
  go [] l

let int_field name j =
  let* v = field name j in
  as_int v

let float_field name j =
  let* v = field name j in
  as_float v

let string_field name j =
  let* v = field name j in
  as_string v

let list_field name j =
  let* v = field name j in
  as_list v

(* 64-bit PRNG cursors exceed OCaml's 63-bit [Int]; ship them as
   decimal strings. *)
let int64_to_json v = Json.String (Int64.to_string v)

let int64_of_json j =
  let* s = as_string j in
  match Int64.of_string_opt s with
  | Some v -> Ok v
  | None -> Error ("invalid int64: " ^ s)

let float_array_to_json a =
  Json.List (Array.to_list (Array.map (fun f -> Json.Float f) a))

let float_array_of_json j =
  let* l = as_list j in
  let* fs = map_m as_float l in
  Ok (Array.of_list fs)

let int_array_to_json a =
  Json.List (Array.to_list (Array.map (fun i -> Json.Int i) a))

let int_array_of_json j =
  let* l = as_list j in
  let* is = map_m as_int l in
  Ok (Array.of_list is)

let bool_array_to_json a =
  Json.List (Array.to_list (Array.map (fun b -> Json.Bool b) a))

let bool_array_of_json j =
  let* l = as_list j in
  let* bs = map_m as_bool l in
  Ok (Array.of_list bs)

(* ------------------------------------------------------------------ *)
(* Traffic and update-event types.                                     *)

let flow_to_json (r : Flow_record.t) =
  Json.Obj
    [
      ("id", Json.Int r.Flow_record.id);
      ("src", Json.Int r.Flow_record.src);
      ("dst", Json.Int r.Flow_record.dst);
      ("size_mbit", Json.Float r.Flow_record.size_mbit);
      ("duration_s", Json.Float r.Flow_record.duration_s);
      ("arrival_s", Json.Float r.Flow_record.arrival_s);
    ]

let flow_of_json j =
  let* id = int_field "id" j in
  let* src = int_field "src" j in
  let* dst = int_field "dst" j in
  let* size_mbit = float_field "size_mbit" j in
  let* duration_s = float_field "duration_s" j in
  let* arrival_s = float_field "arrival_s" j in
  try Ok (Flow_record.v ~id ~src ~dst ~size_mbit ~duration_s ~arrival_s)
  with Invalid_argument msg -> Error msg

let avoid_to_json = function
  | Event.Unconstrained -> Json.Obj [ ("kind", Json.String "unconstrained") ]
  | Event.Avoid_node v ->
      Json.Obj [ ("kind", Json.String "avoid_node"); ("node", Json.Int v) ]
  | Event.Avoid_edges es ->
      Json.Obj
        [
          ("kind", Json.String "avoid_edges");
          ("edges", Json.List (List.map (fun e -> Json.Int e) es));
        ]

let avoid_of_json j =
  let* kind = string_field "kind" j in
  match kind with
  | "unconstrained" -> Ok Event.Unconstrained
  | "avoid_node" ->
      let* v = int_field "node" j in
      Ok (Event.Avoid_node v)
  | "avoid_edges" ->
      let* es = list_field "edges" j in
      let* ids = map_m as_int es in
      Ok (Event.Avoid_edges ids)
  | k -> Error ("unknown avoid kind: " ^ k)

let work_to_json = function
  | Event.Install r ->
      Json.Obj [ ("op", Json.String "install"); ("flow", flow_to_json r) ]
  | Event.Reroute { flow_id; avoid } ->
      Json.Obj
        [
          ("op", Json.String "reroute");
          ("flow_id", Json.Int flow_id);
          ("avoid", avoid_to_json avoid);
        ]

let work_of_json j =
  let* op = string_field "op" j in
  match op with
  | "install" ->
      let* fj = field "flow" j in
      let* r = flow_of_json fj in
      Ok (Event.Install r)
  | "reroute" ->
      let* flow_id = int_field "flow_id" j in
      let* aj = field "avoid" j in
      let* avoid = avoid_of_json aj in
      Ok (Event.Reroute { flow_id; avoid })
  | op -> Error ("unknown work op: " ^ op)

let kind_to_json = function
  | Event.Additions -> Json.Obj [ ("kind", Json.String "additions") ]
  | Event.Vm_migration -> Json.Obj [ ("kind", Json.String "vm_migration") ]
  | Event.Switch_upgrade v ->
      Json.Obj [ ("kind", Json.String "switch_upgrade"); ("node", Json.Int v) ]
  | Event.Link_failure (a, b) ->
      Json.Obj
        [
          ("kind", Json.String "link_failure");
          ("edge", Json.Int a);
          ("reverse", Json.Int b);
        ]

let kind_of_json j =
  let* kind = string_field "kind" j in
  match kind with
  | "additions" -> Ok Event.Additions
  | "vm_migration" -> Ok Event.Vm_migration
  | "switch_upgrade" ->
      let* v = int_field "node" j in
      Ok (Event.Switch_upgrade v)
  | "link_failure" ->
      let* a = int_field "edge" j in
      let* b = int_field "reverse" j in
      Ok (Event.Link_failure (a, b))
  | k -> Error ("unknown event kind: " ^ k)

let event_to_json (ev : Event.t) =
  Json.Obj
    [
      ("id", Json.Int ev.Event.id);
      ("arrival_s", Json.Float ev.Event.arrival_s);
      ("kind", kind_to_json ev.Event.kind);
      ("work", Json.List (List.map work_to_json ev.Event.work));
    ]

let event_of_json j =
  let* id = int_field "id" j in
  let* arrival_s = float_field "arrival_s" j in
  let* kj = field "kind" j in
  let* kind = kind_of_json kj in
  let* wl = list_field "work" j in
  let* work = map_m work_of_json wl in
  if work = [] then Error "event with empty work list"
  else Ok { Event.id; arrival_s; kind; work }

let request_to_json (r : Request.t) =
  Json.Obj
    [
      ("tenant", Json.String r.Request.tenant);
      ("event", event_to_json r.Request.event);
    ]

let request_of_json j =
  let* tenant = string_field "tenant" j in
  let* ej = field "event" j in
  let* event = event_of_json ej in
  if tenant = "" then Error "empty tenant" else Ok { Request.tenant; event }

(* ------------------------------------------------------------------ *)
(* Policy.                                                             *)

let policy_to_json = function
  | Policy.Fifo -> Json.Obj [ ("policy", Json.String "fifo") ]
  | Policy.Reorder -> Json.Obj [ ("policy", Json.String "reorder") ]
  | Policy.Lmtf { alpha } ->
      Json.Obj [ ("policy", Json.String "lmtf"); ("alpha", Json.Int alpha) ]
  | Policy.Plmtf { alpha } ->
      Json.Obj [ ("policy", Json.String "plmtf"); ("alpha", Json.Int alpha) ]
  | Policy.Flow_level Policy.Round_robin ->
      Json.Obj
        [
          ("policy", Json.String "flow_level");
          ("order", Json.String "round_robin");
        ]
  | Policy.Flow_level Policy.By_arrival ->
      Json.Obj
        [
          ("policy", Json.String "flow_level");
          ("order", Json.String "by_arrival");
        ]

let policy_of_json j =
  let* p = string_field "policy" j in
  match p with
  | "fifo" -> Ok Policy.Fifo
  | "reorder" -> Ok Policy.Reorder
  | "lmtf" ->
      let* alpha = int_field "alpha" j in
      Ok (Policy.Lmtf { alpha })
  | "plmtf" ->
      let* alpha = int_field "alpha" j in
      Ok (Policy.Plmtf { alpha })
  | "flow_level" -> (
      let* order = string_field "order" j in
      match order with
      | "round_robin" -> Ok (Policy.Flow_level Policy.Round_robin)
      | "by_arrival" -> Ok (Policy.Flow_level Policy.By_arrival)
      | o -> Error ("unknown flow order: " ^ o))
  | p -> Error ("unknown policy: " ^ p)

(* ------------------------------------------------------------------ *)
(* Fault schedules.                                                    *)

let fault_action_to_json = function
  | Fault_model.Link_down e ->
      Json.Obj [ ("op", Json.String "link_down"); ("edge", Json.Int e) ]
  | Fault_model.Link_up e ->
      Json.Obj [ ("op", Json.String "link_up"); ("edge", Json.Int e) ]
  | Fault_model.Switch_down v ->
      Json.Obj [ ("op", Json.String "switch_down"); ("node", Json.Int v) ]
  | Fault_model.Switch_up v ->
      Json.Obj [ ("op", Json.String "switch_up"); ("node", Json.Int v) ]
  | Fault_model.Degrade { edge; lost_mbps } ->
      Json.Obj
        [
          ("op", Json.String "degrade");
          ("edge", Json.Int edge);
          ("lost_mbps", Json.Float lost_mbps);
        ]
  | Fault_model.Restore e ->
      Json.Obj [ ("op", Json.String "restore"); ("edge", Json.Int e) ]

let fault_action_of_json j =
  let* op = string_field "op" j in
  match op with
  | "link_down" ->
      let* e = int_field "edge" j in
      Ok (Fault_model.Link_down e)
  | "link_up" ->
      let* e = int_field "edge" j in
      Ok (Fault_model.Link_up e)
  | "switch_down" ->
      let* v = int_field "node" j in
      Ok (Fault_model.Switch_down v)
  | "switch_up" ->
      let* v = int_field "node" j in
      Ok (Fault_model.Switch_up v)
  | "degrade" ->
      let* edge = int_field "edge" j in
      let* lost_mbps = float_field "lost_mbps" j in
      Ok (Fault_model.Degrade { edge; lost_mbps })
  | "restore" ->
      let* e = int_field "edge" j in
      Ok (Fault_model.Restore e)
  | op -> Error ("unknown fault op: " ^ op)

let fault_to_json (f : Fault_model.fault) =
  Json.Obj
    [
      ("at_s", Json.Float f.Fault_model.at_s);
      ("action", fault_action_to_json f.Fault_model.action);
    ]

let fault_of_json j =
  let* at_s = float_field "at_s" j in
  let* aj = field "action" j in
  let* action = fault_action_of_json aj in
  Ok { Fault_model.at_s; action }

let injector_frozen_to_json (fz : Injector.frozen) =
  Json.Obj
    [
      ("pending", Json.List (List.map fault_to_json fz.Injector.fz_pending));
      ( "attempts",
        Json.List
          (List.map
             (fun (id, n) -> Json.List [ Json.Int id; Json.Int n ])
             fz.Injector.fz_attempts) );
      ("violations", Json.Int fz.Injector.fz_violations);
    ]

let injector_frozen_of_json j =
  let* pl = list_field "pending" j in
  let* fz_pending = map_m fault_of_json pl in
  let* al = list_field "attempts" j in
  let* fz_attempts =
    map_m
      (function
        | Json.List [ Json.Int id; Json.Int n ] -> Ok (id, n)
        | j -> Error ("bad attempt pair: " ^ Json.to_string j))
      al
  in
  let* fz_violations = int_field "violations" j in
  Ok { Injector.fz_pending; fz_attempts; fz_violations }

(* ------------------------------------------------------------------ *)
(* Network state.                                                      *)

let path_to_json p =
  Json.List (List.map (fun v -> Json.Int v) (Path.nodes p))

let path_of_json graph j =
  let* l = as_list j in
  let* nodes = map_m as_int l in
  try Ok (Path.of_nodes graph nodes)
  with Invalid_argument msg -> Error msg

let placed_to_json (p : Net_state.placed) =
  Json.Obj
    [
      ("flow", flow_to_json p.Net_state.record);
      ("path", path_to_json p.Net_state.path);
    ]

let placed_of_json graph j =
  let* fj = field "flow" j in
  let* record = flow_of_json fj in
  let* pj = field "path" j in
  let* path = path_of_json graph pj in
  Ok { Net_state.record; path }

let net_frozen_to_json (fz : Net_state.frozen) =
  Json.Obj
    [
      ("flows", Json.List (List.map placed_to_json fz.Net_state.fz_flows));
      ("residual", float_array_to_json fz.Net_state.fz_residual);
      ("degraded", float_array_to_json fz.Net_state.fz_degraded);
      ("disabled", bool_array_to_json fz.Net_state.fz_disabled);
      ("versions", int_array_to_json fz.Net_state.fz_versions);
      ("disabled_epoch", Json.Int fz.Net_state.fz_disabled_epoch);
      ("util_sum", Json.Float fz.Net_state.fz_util_sum);
      ("util_comp", Json.Float fz.Net_state.fz_util_comp);
    ]

let net_frozen_of_json graph j =
  let* fl = list_field "flows" j in
  let* fz_flows = map_m (placed_of_json graph) fl in
  let* rj = field "residual" j in
  let* fz_residual = float_array_of_json rj in
  let* dj = field "degraded" j in
  let* fz_degraded = float_array_of_json dj in
  let* bj = field "disabled" j in
  let* fz_disabled = bool_array_of_json bj in
  let* vj = field "versions" j in
  let* fz_versions = int_array_of_json vj in
  let* fz_disabled_epoch = int_field "disabled_epoch" j in
  let* fz_util_sum = float_field "util_sum" j in
  let* fz_util_comp = float_field "util_comp" j in
  Ok
    {
      Net_state.fz_flows;
      fz_residual;
      fz_degraded;
      fz_disabled;
      fz_versions;
      fz_disabled_epoch;
      fz_util_sum;
      fz_util_comp;
    }

(* ------------------------------------------------------------------ *)
(* Engine stepper.                                                     *)

let event_result_to_json (r : Engine.event_result) =
  Json.Obj
    [
      ("event_id", Json.Int r.Engine.event_id);
      ("arrival_s", Json.Float r.Engine.arrival_s);
      ("start_s", Json.Float r.Engine.start_s);
      ("completion_s", Json.Float r.Engine.completion_s);
      ("cost_mbit", Json.Float r.Engine.cost_mbit);
      ("plan_work_units", Json.Int r.Engine.plan_work_units);
      ("failed_items", Json.Int r.Engine.failed_items);
      ("co_scheduled", Json.Bool r.Engine.co_scheduled);
    ]

let event_result_of_json j =
  let* event_id = int_field "event_id" j in
  let* arrival_s = float_field "arrival_s" j in
  let* start_s = float_field "start_s" j in
  let* completion_s = float_field "completion_s" j in
  let* cost_mbit = float_field "cost_mbit" j in
  let* plan_work_units = int_field "plan_work_units" j in
  let* failed_items = int_field "failed_items" j in
  let* cj = field "co_scheduled" j in
  let* co_scheduled = as_bool cj in
  Ok
    {
      Engine.event_id;
      arrival_s;
      start_s;
      completion_s;
      cost_mbit;
      plan_work_units;
      failed_items;
      co_scheduled;
    }

let round_info_to_json (ri : Engine.round_info) =
  Json.Obj
    [
      ("round_start_s", Json.Float ri.Engine.round_start_s);
      ( "executed",
        Json.List (List.map (fun id -> Json.Int id) ri.Engine.executed) );
      ("co_count", Json.Int ri.Engine.co_count);
      ("round_units", Json.Int ri.Engine.round_units);
      ("fabric_utilization", Json.Float ri.Engine.fabric_utilization);
    ]

let round_info_of_json j =
  let* round_start_s = float_field "round_start_s" j in
  let* el = list_field "executed" j in
  let* executed = map_m as_int el in
  let* co_count = int_field "co_count" j in
  let* round_units = int_field "round_units" j in
  let* fabric_utilization = float_field "fabric_utilization" j in
  Ok
    {
      Engine.round_start_s;
      executed;
      co_count;
      round_units;
      fabric_utilization;
    }

let held_to_json (ready_s, ev) =
  Json.Obj [ ("ready_s", Json.Float ready_s); ("event", event_to_json ev) ]

let held_of_json j =
  let* ready_s = float_field "ready_s" j in
  let* ej = field "event" j in
  let* ev = event_of_json ej in
  Ok (ready_s, ev)

let expiry_to_json (dep_s, flow_id) =
  Json.List [ Json.Float dep_s; Json.Int flow_id ]

let expiry_of_json = function
  | Json.List [ d; Json.Int id ] ->
      let* dep = as_float d in
      Ok (dep, id)
  | j -> Error ("bad expiry entry: " ^ Json.to_string j)

let stepper_frozen_to_json (fz : Engine.Stepper.frozen) =
  Json.Obj
    [
      ("policy", policy_to_json fz.Engine.Stepper.fz_policy);
      ( "pending",
        Json.List (List.map event_to_json fz.Engine.Stepper.fz_pending) );
      ("queue", Json.List (List.map event_to_json fz.Engine.Stepper.fz_queue));
      ("held", Json.List (List.map held_to_json fz.Engine.Stepper.fz_held));
      ("now_s", Json.Float fz.Engine.Stepper.fz_now);
      ("rounds", Json.Int fz.Engine.Stepper.fz_rounds);
      ( "results",
        Json.List (List.map event_result_to_json fz.Engine.Stepper.fz_results)
      );
      ("log", Json.List (List.map round_info_to_json fz.Engine.Stepper.fz_log));
      ("units", Json.Int fz.Engine.Stepper.fz_units);
      ("wall_s", Json.Float fz.Engine.Stepper.fz_wall);
      ("next_churn_id", Json.Int fz.Engine.Stepper.fz_next_churn_id);
      ( "expiry",
        Json.List (List.map expiry_to_json fz.Engine.Stepper.fz_expiry) );
      ("rng", int64_to_json fz.Engine.Stepper.fz_rng);
    ]

let stepper_frozen_of_json j =
  let* pj = field "policy" j in
  let* fz_policy = policy_of_json pj in
  let* pl = list_field "pending" j in
  let* fz_pending = map_m event_of_json pl in
  let* ql = list_field "queue" j in
  let* fz_queue = map_m event_of_json ql in
  let* hl = list_field "held" j in
  let* fz_held = map_m held_of_json hl in
  let* fz_now = float_field "now_s" j in
  let* fz_rounds = int_field "rounds" j in
  let* rl = list_field "results" j in
  let* fz_results = map_m event_result_of_json rl in
  let* ll = list_field "log" j in
  let* fz_log = map_m round_info_of_json ll in
  let* fz_units = int_field "units" j in
  let* fz_wall = float_field "wall_s" j in
  let* fz_next_churn_id = int_field "next_churn_id" j in
  let* xl = list_field "expiry" j in
  let* fz_expiry = map_m expiry_of_json xl in
  let* rj = field "rng" j in
  let* fz_rng = int64_of_json rj in
  Ok
    {
      Engine.Stepper.fz_policy;
      fz_pending;
      fz_queue;
      fz_held;
      fz_now;
      fz_rounds;
      fz_results;
      fz_log;
      fz_units;
      fz_wall;
      fz_next_churn_id;
      fz_expiry;
      fz_rng;
    }

(* ------------------------------------------------------------------ *)
(* Admission queue.                                                    *)

let admission_frozen_to_json (fz : Admission.frozen) =
  Json.Obj
    [
      ("next_seq", Json.Int fz.Admission.fz_next_seq);
      ( "tenants",
        Json.List
          (List.map (fun s -> Json.String s) fz.Admission.fz_tenants) );
      ( "queues",
        Json.List
          (List.map
             (fun (tenant, entries) ->
               Json.Obj
                 [
                   ("tenant", Json.String tenant);
                   ( "entries",
                     Json.List
                       (List.map
                          (fun (seq, enq_tick, req) ->
                            Json.Obj
                              [
                                ("seq", Json.Int seq);
                                ("enq_tick", Json.Int enq_tick);
                                ("request", request_to_json req);
                              ])
                          entries) );
                 ])
             fz.Admission.fz_queues) );
      ( "stats",
        Json.List
          (List.map
             (fun (tenant, (admitted, shed, drained)) ->
               Json.Obj
                 [
                   ("tenant", Json.String tenant);
                   ("admitted", Json.Int admitted);
                   ("shed", Json.Int shed);
                   ("drained", Json.Int drained);
                 ])
             fz.Admission.fz_stats) );
    ]

let admission_frozen_of_json j =
  let* fz_next_seq = int_field "next_seq" j in
  let* tl = list_field "tenants" j in
  let* fz_tenants = map_m as_string tl in
  let* ql = list_field "queues" j in
  let* fz_queues =
    map_m
      (fun qj ->
        let* tenant = string_field "tenant" qj in
        let* el = list_field "entries" qj in
        let* entries =
          map_m
            (fun ej ->
              let* seq = int_field "seq" ej in
              let* enq_tick = int_field "enq_tick" ej in
              let* rj = field "request" ej in
              let* req = request_of_json rj in
              Ok (seq, enq_tick, req))
            el
        in
        Ok (tenant, entries))
      ql
  in
  let* sl = list_field "stats" j in
  let* fz_stats =
    map_m
      (fun sj ->
        let* tenant = string_field "tenant" sj in
        let* admitted = int_field "admitted" sj in
        let* shed = int_field "shed" sj in
        let* drained = int_field "drained" sj in
        Ok (tenant, (admitted, shed, drained)))
      sl
  in
  Ok { Admission.fz_next_seq; fz_tenants; fz_queues; fz_stats }
