(** Update-event planning: Cost(U) and the applied plan (paper §III-B, §IV-A).

    For each work item of an event the planner first looks for a
    congestion-free candidate path; failing that, it picks the candidate
    whose capacity gaps are smallest and clears it with
    {!Migration.clear_path}. The total migrated traffic over all items is
    Cost(U) of Definition 2 — the scheduling metric of LMTF/P-LMTF.

    [plan] mutates the network (the event becomes installed) and returns
    a reversible record; [revert] undoes it exactly. Cost estimation for
    queue scheduling is plan-then-revert ({!cost_of}), which is how the
    paper's schedulers "calculate the update costs for α+1 update events"
    against the live network state each round. *)

type admission =
  | Desired_first
      (** The paper's order: check the flow's ECMP-hashed desired path,
          migrate existing flows off it if congested, and only then look
          at other candidates. Keeps flows where the update plan wants
          them at the price of more migration (non-zero Cost(U)). *)
  | Scan_first
      (** Ablation: hunt for any congestion-free candidate before
          migrating anything. Minimises migration, ignores the desired
          placement. *)

val admission_name : admission -> string

type config = {
  policy : Routing.policy;  (** Path selection for installs and targets. *)
  order : Migration.order;  (** Greedy order inside {!Migration}. *)
  admission : admission;
  max_clear_attempts : int;
      (** Candidate paths tried with migration before the item fails. *)
}

val default_config : config
(** First-fit, best-fit-first, desired-first, 4 clear attempts. *)

type failure_reason =
  | No_candidate_path  (** P(f) is empty (or all filtered out). *)
  | Could_not_free  (** Every clear attempt was blocked. *)
  | Flow_not_placed  (** A [Reroute] item names an unknown flow. *)
  | Already_placed  (** An [Install] item reuses a placed flow id. *)

type outcome =
  | Installed of { path : Path.t; moves : Migration.move list }
  | Rerouted of {
      from_path : Path.t;
      to_path : Path.t;
      moves : Migration.move list;
    }
  | Failed of failure_reason

type item_plan = { work : Event.work; outcome : outcome }

type t = {
  event : Event.t;
  items : item_plan list;  (** Work order. *)
  cost_mbit : float;  (** Cost(U): make-room migrated traffic. *)
  move_count : int;  (** Make-room migrations performed. *)
  failed_count : int;  (** Unsatisfiable work items (left untouched). *)
  transfer_mbit : float;
      (** Traffic volume actually moved during execution: make-room moves
          plus the event's own reroute work. Drives execution time. *)
  rule_hops : int;
      (** Path hops programmed (installs + both reroute kinds) — the
          rule-update component of execution time. *)
  work_units : int;  (** Feasibility probes consumed while planning. *)
}

val plan :
  ?rng:Prng.t ->
  ?config:config ->
  ?frozen:(int -> bool) ->
  Net_state.t ->
  Event.t ->
  t
(** Plan and apply the event against the live state. Failed items leave
    no trace. [frozen] (default: none) marks flow ids that must not be
    migrated to make room — P-LMTF uses it for flows other events of the
    same round are still installing. *)

val revert : Net_state.t -> t -> unit
(** Undo a plan returned by {!plan}, newest-first, restoring the exact
    prior placements. Must be called on the same state value, with no
    interleaved conflicting mutations. *)

val replay : Net_state.t -> t -> unit
(** Re-apply a plan whose effects were undone (by {!revert} or a
    transaction rollback), replaying the recorded make-room moves and
    install/reroute actions directly — no candidate search, no clear
    attempts, O(recorded operations). Only valid when the state is
    identical to the one the plan was computed against (the estimate
    cache's version stamps guarantee this); raises [Invalid_argument]
    if the state has diverged. *)

type estimate = {
  est_cost_mbit : float;
  est_failed : int;
  est_work_units : int;
}

type probe = {
  probe_est : estimate;
  probe_plan : t;
      (** The speculative plan itself — replayable via {!replay} while
          the state is unchanged on every touched edge. *)
  probe_touched : int array;
      (** Edge ids the plan read or wrote, sorted ascending. *)
}

val probe :
  ?rng:Prng.t ->
  ?config:config ->
  ?frozen:(int -> bool) ->
  Net_state.t ->
  Event.t ->
  probe
(** Plan inside a {!Nu_net.Net_state.begin_txn}/[rollback] bracket and
    record the touched-edge set. The state is unchanged on return; the
    rollback costs O(operations performed) rather than a full revert
    re-plan. This is the memoisable form of {!cost_of}. *)

val cost_of :
  ?rng:Prng.t ->
  ?config:config ->
  ?frozen:(int -> bool) ->
  Net_state.t ->
  Event.t ->
  estimate
(** [(probe net event).probe_est] — plan, read Cost(U), roll back. The
    state is unchanged on return. *)

val pp : Format.formatter -> t -> unit
