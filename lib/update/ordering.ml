type move_spec = { flow_id : int; to_path : Path.t }

type schedule = {
  rounds : move_spec list list;
  depth : int;
  width : int;
}

type error = Deadlock of move_spec list | Unknown_flow of int

let of_moves moves =
  List.map
    (fun (m : Migration.move) ->
      { flow_id = m.Migration.flow_id; to_path = m.Migration.to_path })
    moves

let schedule net moves =
  (* Work on a scratch copy: executing a move = rerouting the flow, which
     frees its old links for later rounds. *)
  let scratch = Net_state.copy net in
  let unknown =
    List.find_opt (fun m -> not (Net_state.is_placed scratch m.flow_id)) moves
  in
  match unknown with
  | Some m -> Error (Unknown_flow m.flow_id)
  | None ->
      let rec build rounds remaining =
        match remaining with
        | [] ->
            let rounds = List.rev rounds in
            Ok
              {
                rounds;
                depth = List.length rounds;
                width = List.fold_left (fun a r -> max a (List.length r)) 0 rounds;
              }
        | _ ->
            (* A move is executable when rerouting succeeds against the
               current scratch state. Collect this round greedily in move
               order; each success immediately frees capacity, which is
               fine: those moves run concurrently and make-before-break
               ordering within a round only helps. *)
            let executed, blocked =
              List.partition
                (fun m ->
                  match Net_state.reroute scratch m.flow_id m.to_path with
                  | Ok _ -> true
                  | Error _ -> false
                  | exception Invalid_argument _ -> false)
                remaining
            in
            if executed = [] then Error (Deadlock blocked)
            else build (executed :: rounds) blocked
      in
      build [] moves

let verify net s =
  let scratch = Net_state.copy net in
  let err = ref None in
  List.iteri
    (fun round_idx round ->
      List.iter
        (fun m ->
          if !err = None then
            match Net_state.reroute scratch m.flow_id m.to_path with
            | Ok _ -> ()
            | Error _ ->
                err :=
                  Some
                    (Printf.sprintf "round %d: move of flow %d is infeasible"
                       round_idx m.flow_id)
            | exception Invalid_argument msg ->
                err := Some (Printf.sprintf "round %d: %s" round_idx msg))
        round)
    s.rounds;
  match !err with None -> Ok () | Some e -> Error e

let pp_schedule ppf s =
  Format.fprintf ppf "ordering[%d moves in %d rounds, width %d]"
    (List.fold_left (fun a r -> a + List.length r) 0 s.rounds)
    s.depth s.width
