(** Dependency-aware ordering of a plan's flow moves (Dionysus-style,
    the paper's citation [9]).

    A plan's migrations are computed sequentially, so replaying them in
    plan order is always safe. But an SDN controller wants to issue as
    many moves as possible *concurrently*: a move can start as soon as
    its target path has room, where room may only appear after other
    moves vacate links — the capacity dependencies Dionysus encodes in
    its dependency graph. This module computes the greedy round
    decomposition: round k holds every not-yet-executed move whose target
    path is feasible given the state after rounds 1..k-1.

    The number of rounds is the depth of the dependency structure — a
    direct measure of how parallelisable an update event's execution is
    (the paper's "update cost" grows with it). A [Deadlock] (no move
    executable although some remain) cannot arise for moves produced by
    {!Migration.clear_path} replayed from the pre-plan state, but can for
    arbitrary user-supplied move sets; it is reported rather than
    resolved (Dionysus falls back to rate-limiting). *)

type move_spec = {
  flow_id : int;
  to_path : Path.t;
}

type schedule = {
  rounds : move_spec list list;  (** Execution rounds, each concurrent. *)
  depth : int;  (** [List.length rounds]. *)
  width : int;  (** Largest round. *)
}

type error =
  | Deadlock of move_spec list  (** Moves that can never proceed. *)
  | Unknown_flow of int

val of_moves : Migration.move list -> move_spec list
(** Forget the bookkeeping fields of planner moves. *)

val schedule :
  Net_state.t -> move_spec list -> (schedule, error) result
(** [schedule net moves] computes the round decomposition against a
    network state in which the moves have *not* yet been applied (e.g. a
    copy taken before {!Planner.plan}, or after {!Planner.revert}).
    The state is left unchanged. *)

val verify : Net_state.t -> schedule -> (unit, string) result
(** Replay the schedule round by round against a copy of the pre-move
    state and check that every move is feasible when its round starts —
    the congestion-free-transition property the zUpdate/SWAN line of
    work plans for explicitly. The input state is unchanged. *)

val pp_schedule : Format.formatter -> schedule -> unit
