(** Local migration of existing flows (paper Definition 1 and §IV-A).

    When a flow f_a of an update event finds every link of a desired path
    congested-free except some set E^c, the network can still admit it by
    migrating a subset F_a of the existing flows crossing E^c to other
    parts of the network. Choosing the minimum-traffic F_a is
    NP-complete (the paper cites [8]); this module implements the greedy
    approximation: per congested link, relocatable flows are taken in a
    configurable order until the freed bandwidth closes the capacity gap
    (constraint (3)), and every migrated flow is moved to a path that is
    itself congestion-free (constraint (5)) and avoids the whole desired
    path, which guarantees monotone progress. *)

type move = {
  flow_id : int;
  from_path : Path.t;
  to_path : Path.t;
  size_mbit : float;  (** Migrated traffic volume — the cost unit. *)
  demand_mbps : float;  (** Bandwidth freed on the vacated links. *)
}

type order =
  | Best_fit_first
      (** The default: if one flow's demand covers the remaining gap,
          migrate the smallest-sized such flow; otherwise take the flow
          with the best size-per-Mbps ratio and recurse. Closes gaps with
          few moves ("a few existing flows", §I) at near-minimal migrated
          traffic. *)
  | Smallest_size_first
      (** Strictly cheapest-traffic-first; can migrate many mice per gap
          (ablation). *)
  | Largest_demand_first
      (** Close the gap with the fewest moves regardless of traffic
          (ablation). *)
  | Best_ratio_first
      (** Smallest size per Mbps freed (ablation). *)

val order_name : order -> string
val all_orders : order list

type blocked =
  | Cannot_free of Graph.edge
      (** No relocatable subset closes this link's gap. *)

val moves_cost_mbit : move list -> float
(** Sum of migrated traffic — sum(F_a) of Definition 2. *)

val clear_path :
  ?order:order ->
  ?policy:Routing.policy ->
  ?rng:Prng.t ->
  ?forbidden:(Path.t -> bool) ->
  ?work_units:int ref ->
  Net_state.t ->
  demand:float ->
  path:Path.t ->
  exclude:(int -> bool) ->
  (move list, blocked) result
(** [clear_path net ~demand ~path ~exclude] migrates existing flows until
    every edge of [path] has residual >= demand, mutating [net] (the
    chosen reroutes are applied). [exclude] marks flows that must not be
    migrated (the event's own flows). On [Error _] the state is rolled
    back to exactly its entry value. [work_units], when given, is
    incremented once per feasibility probe — the planner's virtual
    plan-time meter. [policy]/[rng] choose relocation targets (default
    first-fit). *)
