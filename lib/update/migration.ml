type move = {
  flow_id : int;
  from_path : Path.t;
  to_path : Path.t;
  size_mbit : float;
  demand_mbps : float;
}

type order =
  | Best_fit_first
  | Smallest_size_first
  | Largest_demand_first
  | Best_ratio_first

let order_name = function
  | Best_fit_first -> "best-fit-first"
  | Smallest_size_first -> "smallest-size-first"
  | Largest_demand_first -> "largest-demand-first"
  | Best_ratio_first -> "best-ratio-first"

let all_orders =
  [ Best_fit_first; Smallest_size_first; Largest_demand_first; Best_ratio_first ]

type blocked = Cannot_free of Graph.edge

let moves_cost_mbit moves =
  List.fold_left (fun acc m -> acc +. m.size_mbit) 0.0 moves

(* The per-link selection loop below rescans its candidate pool after
   every migration attempt. The pool lives in domain-local scratch
   arrays fed straight from Net_state's per-edge columns
   ({!Net_state.edge_flows_blit}) — no per-pool list, no sort, no
   hashtable resolution per flow. Entries arrive in unspecified order,
   so {!select_next} breaks key ties by flow id explicitly; that picks
   the same flow the historical first-wins scan over an id-sorted pool
   did. A [used] mask covers both "already selected" and "not eligible"
   (the event's own flows and flows migrated earlier in this clear). *)
type scratch = {
  mutable ids : int array;  (* flow id *)
  mutable dem : float array;  (* demand_mbps *)
  mutable size : float array;  (* size_mbit *)
  mutable skey : float array;  (* static key under the chosen order *)
  mutable used : bool array;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        ids = Array.make 64 0;
        dem = Array.make 64 0.0;
        size = Array.make 64 0.0;
        skey = Array.make 64 0.0;
        used = Array.make 64 false;
      })

let ensure_scratch s n =
  if Array.length s.ids < n then begin
    let cap = ref (Array.length s.ids) in
    while !cap < n do
      cap := !cap * 2
    done;
    s.ids <- Array.make !cap 0;
    s.dem <- Array.make !cap 0.0;
    s.size <- Array.make !cap 0.0;
    s.skey <- Array.make !cap 0.0;
    s.used <- Array.make !cap false
  end

(* Fill the domain's scratch with edge [edge_id]'s flows; returns the
   entry count. Safe to reuse across the whole clear: nothing below
   (try_relocate, reroute) builds another pool before this link's loop
   finishes. *)
let fill_pool order net edge_id ~exclude ~moved =
  let s = Domain.DLS.get scratch_key in
  ensure_scratch s (Net_state.edge_flow_count net edge_id);
  let n =
    Net_state.edge_flows_blit net edge_id ~ids:s.ids ~dem:s.dem ~size:s.size
  in
  for i = 0 to n - 1 do
    let id = Array.unsafe_get s.ids i in
    s.used.(i) <- exclude id || Hashtbl.mem moved id;
    s.skey.(i) <-
      (match order with
      | Smallest_size_first -> Array.unsafe_get s.size i
      | Largest_demand_first -> -.Array.unsafe_get s.dem i
      | Best_ratio_first | Best_fit_first ->
          Array.unsafe_get s.size i /. Array.unsafe_get s.dem i)
  done;
  (s, n)

(* Pick the next flow to migrate for the remaining [gap] (index into the
   scratch, or -1 when exhausted). Best-fit is gap-dependent: prefer the
   smallest flow that closes the gap alone; otherwise fall back to the
   best static key. Lexicographic (key, flow id) minimisation with a
   strict first comparison: entries whose key never beats infinity
   (NaN, or an infinite ratio) stay unselectable, exactly as under the
   strict [<] scan this replaces. *)
let select_next order ~gap s n =
  let best = ref (-1) and bk = ref infinity and bid = ref max_int in
  let consider i k =
    let id = Array.unsafe_get s.ids i in
    if k < !bk || (!best >= 0 && k = !bk && id < !bid) then begin
      best := i;
      bk := k;
      bid := id
    end
  in
  (match order with
  | Best_fit_first ->
      for i = 0 to n - 1 do
        if
          (not (Array.unsafe_get s.used i))
          && Array.unsafe_get s.dem i >= gap
        then consider i (Array.unsafe_get s.size i)
      done
  | _ -> ());
  if !best < 0 then
    for i = 0 to n - 1 do
      if not (Array.unsafe_get s.used i) then
        consider i (Array.unsafe_get s.skey i)
    done;
  !best

(* Relocation targets must leave the desired path entirely and be
   congestion-free for the migrated flow. Feasibility is judged by
   Net_state.reroute itself (which releases the flow's current usage
   first), so partially-overlapping current/target paths are handled.

   The candidate walk is fused: eligibility, feasibility, policy ranking
   and the reroute attempts all run over the memoised candidate list
   directly, with no intermediate filtered/ranked lists. Eligibility is
   pure (path arrays and the caller's [forbidden] closure), so
   re-evaluating it per phase is unobservable; feasibility and the
   policy keys read net state, but in the same candidate order as the
   filter-then-rank formulation, and probe read sets are deduplicated,
   so recorded read sets and every decision are bit-identical.
   Random_fit still builds the explicit feasible list — [Prng.choose]
   must see the same array it historically did. *)
let try_relocate ?policy ?rng ?(forbidden = fun _ -> false) ~work_units net
    ~desired_path (p : Net_state.placed) =
  let flow_id = p.record.Flow_record.id in
  (* Disjointness test on the flat hop-id arrays: candidate sets are
     ~16 paths of <=8 hops, so the nested scan beats any set building. *)
  let desired_ids = Path.hop_ids desired_path in
  let nd = Array.length desired_ids in
  let off_desired cand =
    let cand_ids = Path.hop_ids cand in
    let nc = Array.length cand_ids in
    let rec disjoint i =
      i >= nc
      ||
      let id = Array.unsafe_get cand_ids i in
      let rec absent j =
        j >= nd || (Array.unsafe_get desired_ids j <> id && absent (j + 1))
      in
      absent 0 && disjoint (i + 1)
    in
    disjoint 0
  in
  let eligible cand =
    off_desired cand
    && (not (forbidden cand))
    && not (Path.equal cand p.path)
  in
  let all = Net_state.candidate_paths net p.record in
  let demand = Flow_record.demand_mbps p.record in
  let feasible cand = Net_state.path_feasible net cand ~demand in
  (* Best eligible+feasible candidate under the policy, or None. *)
  let best =
    match policy with
    | None | Some Routing.First_fit ->
        List.find_opt (fun c -> eligible c && feasible c) all
    | Some Routing.Widest ->
        let bp = ref None and bw = ref neg_infinity in
        List.iter
          (fun c ->
            if eligible c && feasible c then begin
              let w = Routing.bottleneck_residual net c in
              if !bp = None || w > !bw then begin
                bp := Some c;
                bw := w
              end
            end)
          all;
        !bp
    | Some Routing.Least_loaded ->
        let bp = ref None and bu = ref infinity in
        List.iter
          (fun c ->
            if eligible c && feasible c then begin
              let u = Routing.peak_utilization net c in
              if !bp = None || u < !bu then begin
                bp := Some c;
                bu := u
              end
            end)
          all;
        !bp
    | Some Routing.Random_fit ->
        Routing.select_from ?rng ~policy:Routing.Random_fit net ~demand
          (List.filter eligible all)
  in
  (* Attempt reroutes: the ranked winner first, then the remaining
     eligible candidates in enumeration order. *)
  let attempt cand =
    incr work_units;
    match Net_state.reroute net flow_id cand with
    | Ok old_path ->
        Some
          {
            flow_id;
            from_path = old_path;
            to_path = cand;
            size_mbit = p.record.size_mbit;
            demand_mbps = demand;
          }
    | Error _ -> None
  in
  let rec attempt_rest skip = function
    | [] -> None
    | cand :: rest ->
        if
          eligible cand
          && not (match skip with Some b -> Path.equal cand b | None -> false)
        then
          match attempt cand with
          | Some _ as ok -> ok
          | None -> attempt_rest skip rest
        else attempt_rest skip rest
  in
  match best with
  | Some b -> (
      match attempt b with
      | Some _ as ok -> ok
      | None -> attempt_rest (Some b) all)
  | None -> attempt_rest None all

let clear_path ?(order = Best_fit_first) ?policy ?rng ?forbidden
    ?(work_units = ref 0) net ~demand ~path ~exclude =
  Nu_obs.Counters.incr Nu_obs.Counters.Clear_attempts;
  let sp =
    if Nu_obs.Trace.enabled () then
      Some
        (Nu_obs.Trace.span "migrate"
           ~attrs:
             [
               ("demand_mbps", Nu_obs.Trace.Float demand);
               ("hops", Nu_obs.Trace.Int (Path.hops path));
             ])
    else None
  in
  let h_on = Nu_obs.Histogram.Registry.enabled () in
  let h_t0 = if h_on then Nu_obs.Trace.now_ns () else 0L in
  let applied = ref [] in
  let rollback () =
    List.iter
      (fun m ->
        (* admit_disabled: the origin path may cross a link that failed
           after the flow was placed there; rollback must restore the
           placement regardless. *)
        match Net_state.reroute ~admit_disabled:true net m.flow_id m.from_path with
        | Ok _ -> ()
        | Error _ -> assert false (* reverse order restores capacity *))
      !applied
  in
  let moved = Hashtbl.create 16 in
  let congested = Net_state.congested_links net path ~demand in
  let rec clear_links = function
    | [] -> Ok (List.rev !applied)
    | (e : Graph.edge) :: rest ->
        if Net_state.capacity_gap net e ~demand <= 0.0 then clear_links rest
        else begin
          let pool, n = fill_pool order net e.id ~exclude ~moved in
          let rec free_gap () =
            let gap = Net_state.capacity_gap net e ~demand in
            if gap <= 0.0 then `Cleared
            else begin
              match select_next order ~gap pool n with
              | -1 -> `Stuck
              | i -> (
                  pool.used.(i) <- true;
                  (* Resolve the placement lazily: only selected flows
                     are ever rerouted, so an unselected entry's
                     placement cannot have changed since the blit. *)
                  let placed =
                    match Net_state.peek_flow net pool.ids.(i) with
                    | Some p -> p
                    | None -> assert false (* on-edge flows are placed *)
                  in
                  match
                    try_relocate ?policy ?rng ?forbidden ~work_units net
                      ~desired_path:path placed
                  with
                  | Some move ->
                      applied := move :: !applied;
                      Hashtbl.replace moved move.flow_id ();
                      free_gap ()
                  | None -> free_gap ())
            end
          in
          match free_gap () with
          | `Cleared -> clear_links rest
          | `Stuck ->
              rollback ();
              Error (Cannot_free e)
        end
  in
  let result = clear_links congested in
  (match result with
  | Ok moves -> Nu_obs.Counters.add Nu_obs.Counters.Migration_moves (List.length moves)
  | Error _ -> ());
  if h_on then begin
    Nu_obs.Histogram.Registry.record "migration.clear_latency_s"
      (Int64.to_float (Int64.sub (Nu_obs.Trace.now_ns ()) h_t0) *. 1e-9);
    match result with
    | Ok moves ->
        Nu_obs.Histogram.Registry.record "migration.moves_per_clear"
          (float_of_int (List.length moves))
    | Error _ -> ()
  end;
  (match sp with
  | Some sp ->
      let attrs =
        match result with
        | Ok moves ->
            [
              ("cleared", Nu_obs.Trace.Bool true);
              ("moves", Nu_obs.Trace.Int (List.length moves));
              ("moved_mbit", Nu_obs.Trace.Float (moves_cost_mbit moves));
            ]
        | Error (Cannot_free e) ->
            [
              ("cleared", Nu_obs.Trace.Bool false);
              ("blocked_edge", Nu_obs.Trace.Int e.Graph.id);
            ]
      in
      Nu_obs.Trace.finish sp ~attrs
  | None -> ());
  result
