type move = {
  flow_id : int;
  from_path : Path.t;
  to_path : Path.t;
  size_mbit : float;
  demand_mbps : float;
}

type order =
  | Best_fit_first
  | Smallest_size_first
  | Largest_demand_first
  | Best_ratio_first

let order_name = function
  | Best_fit_first -> "best-fit-first"
  | Smallest_size_first -> "smallest-size-first"
  | Largest_demand_first -> "largest-demand-first"
  | Best_ratio_first -> "best-ratio-first"

let all_orders =
  [ Best_fit_first; Smallest_size_first; Largest_demand_first; Best_ratio_first ]

type blocked = Cannot_free of Graph.edge

let moves_cost_mbit moves =
  List.fold_left (fun acc m -> acc +. m.size_mbit) 0.0 moves

let static_key order (p : Net_state.placed) =
  let size = p.record.Flow_record.size_mbit in
  let demand = Flow_record.demand_mbps p.record in
  match order with
  | Smallest_size_first -> size
  | Largest_demand_first -> -.demand
  | Best_ratio_first | Best_fit_first -> size /. demand

(* Pick the next flow to migrate for the remaining [gap] and return it
   with the rest of the pool. Best-fit is gap-dependent: prefer the
   smallest flow that closes the gap alone; otherwise fall back to the
   best size/demand ratio. The other orders are static. *)
let select_next order ~gap candidates =
  match candidates with
  | [] -> None
  | _ ->
      let better key a b = if key b < key a then b else a in
      let choice =
        match order with
        | Best_fit_first -> (
            let covering =
              List.filter
                (fun (p : Net_state.placed) ->
                  Flow_record.demand_mbps p.record >= gap)
                candidates
            in
            match covering with
            | first :: rest ->
                List.fold_left
                  (better (fun (p : Net_state.placed) ->
                       p.record.Flow_record.size_mbit))
                  first rest
            | [] -> (
                match candidates with
                | first :: rest ->
                    List.fold_left (better (static_key order)) first rest
                | [] -> assert false))
        | _ -> (
            match candidates with
            | first :: rest ->
                List.fold_left (better (static_key order)) first rest
            | [] -> assert false)
      in
      let rest =
        List.filter
          (fun (p : Net_state.placed) ->
            p.record.Flow_record.id <> choice.record.Flow_record.id)
          candidates
      in
      Some (choice, rest)

(* Relocation targets must leave the desired path entirely and be
   congestion-free for the migrated flow. Feasibility is judged by
   Net_state.reroute itself (which releases the flow's current usage
   first), so partially-overlapping current/target paths are handled. *)
let try_relocate ?policy ?rng ?(forbidden = fun _ -> false) ~work_units net
    ~desired_path (p : Net_state.placed) =
  let flow_id = p.record.Flow_record.id in
  let off_desired cand =
    not
      (List.exists
         (fun (e : Graph.edge) -> Path.mentions_edge cand e.id)
         (Path.edges desired_path))
  in
  let candidates =
    List.filter
      (fun cand ->
        off_desired cand
        && (not (forbidden cand))
        && not (Path.equal cand p.path))
      (Net_state.candidate_paths net p.record)
  in
  (* Rank candidates under the chosen policy using current residuals
     (ignoring the flow's own usage, which only makes the ranking
     conservative), then attempt reroutes in that order. *)
  let demand = Flow_record.demand_mbps p.record in
  let ranked =
    match Routing.select_from ?rng ?policy net ~demand candidates with
    | Some best -> best :: List.filter (fun c -> not (Path.equal c best)) candidates
    | None -> candidates
  in
  let rec attempt = function
    | [] -> None
    | cand :: rest -> (
        incr work_units;
        match Net_state.reroute net flow_id cand with
        | Ok old_path ->
            Some
              {
                flow_id;
                from_path = old_path;
                to_path = cand;
                size_mbit = p.record.size_mbit;
                demand_mbps = demand;
              }
        | Error _ -> attempt rest)
  in
  attempt ranked

let clear_path ?(order = Best_fit_first) ?policy ?rng ?forbidden
    ?(work_units = ref 0) net ~demand ~path ~exclude =
  Nu_obs.Counters.incr Nu_obs.Counters.Clear_attempts;
  let sp =
    if Nu_obs.Trace.enabled () then
      Some
        (Nu_obs.Trace.span "migrate"
           ~attrs:
             [
               ("demand_mbps", Nu_obs.Trace.Float demand);
               ("hops", Nu_obs.Trace.Int (Path.hops path));
             ])
    else None
  in
  let h_on = Nu_obs.Histogram.Registry.enabled () in
  let h_t0 = if h_on then Nu_obs.Trace.now_ns () else 0L in
  let applied = ref [] in
  let rollback () =
    List.iter
      (fun m ->
        (* admit_disabled: the origin path may cross a link that failed
           after the flow was placed there; rollback must restore the
           placement regardless. *)
        match Net_state.reroute ~admit_disabled:true net m.flow_id m.from_path with
        | Ok _ -> ()
        | Error _ -> assert false (* reverse order restores capacity *))
      !applied
  in
  let moved = Hashtbl.create 16 in
  let congested = Net_state.congested_links net path ~demand in
  let rec clear_links = function
    | [] -> Ok (List.rev !applied)
    | (e : Graph.edge) :: rest ->
        if Net_state.capacity_gap net e ~demand <= 0.0 then clear_links rest
        else begin
          let candidates =
            List.filter
              (fun (p : Net_state.placed) ->
                let id = p.record.Flow_record.id in
                (not (exclude id)) && not (Hashtbl.mem moved id))
              (Net_state.flows_on_edge net e.id)
          in
          let rec free_gap pool =
            let gap = Net_state.capacity_gap net e ~demand in
            if gap <= 0.0 then `Cleared
            else begin
              match select_next order ~gap pool with
              | None -> `Stuck
              | Some (cand, rest) -> (
                  match
                    try_relocate ?policy ?rng ?forbidden ~work_units net
                      ~desired_path:path cand
                  with
                  | Some move ->
                      applied := move :: !applied;
                      Hashtbl.replace moved move.flow_id ();
                      free_gap rest
                  | None -> free_gap rest)
            end
          in
          match free_gap candidates with
          | `Cleared -> clear_links rest
          | `Stuck ->
              rollback ();
              Error (Cannot_free e)
        end
  in
  let result = clear_links congested in
  (match result with
  | Ok moves -> Nu_obs.Counters.add Nu_obs.Counters.Migration_moves (List.length moves)
  | Error _ -> ());
  if h_on then begin
    Nu_obs.Histogram.Registry.record "migration.clear_latency_s"
      (Int64.to_float (Int64.sub (Nu_obs.Trace.now_ns ()) h_t0) *. 1e-9);
    match result with
    | Ok moves ->
        Nu_obs.Histogram.Registry.record "migration.moves_per_clear"
          (float_of_int (List.length moves))
    | Error _ -> ()
  end;
  (match sp with
  | Some sp ->
      let attrs =
        match result with
        | Ok moves ->
            [
              ("cleared", Nu_obs.Trace.Bool true);
              ("moves", Nu_obs.Trace.Int (List.length moves));
              ("moved_mbit", Nu_obs.Trace.Float (moves_cost_mbit moves));
            ]
        | Error (Cannot_free e) ->
            [
              ("cleared", Nu_obs.Trace.Bool false);
              ("blocked_edge", Nu_obs.Trace.Int e.Graph.id);
            ]
      in
      Nu_obs.Trace.finish sp ~attrs
  | None -> ());
  result
