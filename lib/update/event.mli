(** The event-level abstraction of network update (paper §III-A).

    An update event U = \{f_1, ..., f_w\} groups every flow an update
    issue involves, so the planner and schedulers treat them as one
    entity. Three concrete update issues from the paper's introduction
    are expressible:

    - plain flow additions (the generated workloads of §V);
    - VM migration — "a set of new flows would be generated for
      migrating involved VMs", i.e. also additions;
    - switch upgrade — "all flows initially passing through it should be
      rerouted along other parts of the network", i.e. forced reroutes of
      existing flows. *)

type avoid =
  | Unconstrained  (** Any candidate path will do. *)
  | Avoid_node of int  (** Switch upgrade: stay clear of this node. *)
  | Avoid_edges of int list
      (** Link failure: stay clear of these edge ids (typically both
          directions of the failed link). *)

type work =
  | Install of Flow_record.t
      (** Admit a new flow (additions, VM-migration traffic). *)
  | Reroute of { flow_id : int; avoid : avoid }
      (** Move an existing placed flow subject to an avoidance
          constraint. *)

type kind =
  | Additions  (** Generic new-flow event. *)
  | Vm_migration  (** Additions whose flows carry VM state. *)
  | Switch_upgrade of int  (** Reroutes evacuating this switch node. *)
  | Link_failure of int * int
      (** Reroutes evacuating a failed (bidirectional) link, given as its
          two directed edge ids. *)

type t = {
  id : int;
  arrival_s : float;
  kind : kind;
  work : work list;  (** Non-empty. *)
}

val of_spec : ?kind:kind -> Event_gen.spec -> t
(** Wrap a generated workload spec as an all-installs event
    (default kind [Additions]). *)

val of_specs : ?kind:kind -> Event_gen.spec list -> t list

val vm_migration_event :
  id:int ->
  arrival_s:float ->
  flows:Flow_record.t list ->
  t
(** Additions carrying VM state; [flows] must be non-empty. *)

val switch_upgrade_event :
  Net_state.t -> id:int -> arrival_s:float -> switch:int -> t
(** Build the evacuation event for a switch from the current network
    state: one [Reroute] per flow whose path visits [switch]. Raises
    [Invalid_argument] when no flow crosses the switch (nothing to
    update). *)

val link_failure_event :
  Net_state.t -> id:int -> arrival_s:float -> edge:int -> t
(** Build the evacuation event for a failed link: one [Reroute] per flow
    crossing the directed edge [edge] or its reverse; new paths must
    avoid both directions. Raises [Invalid_argument] when the edge id is
    out of range or no flow crosses the link. *)

val path_respects : Nu_graph.Path.t -> avoid -> bool
(** Whether a path satisfies an avoidance constraint. *)

val work_count : t -> int
(** w — the number of flows the event involves. *)

val install_records : t -> Flow_record.t list
(** The records of the [Install] items, in work order. *)

val total_install_demand_mbps : t -> float

val compare_by_arrival : t -> t -> int
(** Arrival order; ties by id. The queue order of §III-C. *)

val pp : Format.formatter -> t -> unit
