module Trace = Nu_obs.Trace
module Counters = Nu_obs.Counters
module Histogram = Nu_obs.Histogram

type admission = Desired_first | Scan_first

let admission_name = function
  | Desired_first -> "desired-first"
  | Scan_first -> "scan-first"

type config = {
  policy : Routing.policy;
  order : Migration.order;
  admission : admission;
  max_clear_attempts : int;
}

let default_config =
  {
    policy = Routing.First_fit;
    order = Migration.Best_fit_first;
    admission = Desired_first;
    max_clear_attempts = 4;
  }

type failure_reason =
  | No_candidate_path
  | Could_not_free
  | Flow_not_placed
  | Already_placed

type outcome =
  | Installed of { path : Path.t; moves : Migration.move list }
  | Rerouted of {
      from_path : Path.t;
      to_path : Path.t;
      moves : Migration.move list;
    }
  | Failed of failure_reason

type item_plan = { work : Event.work; outcome : outcome }

type t = {
  event : Event.t;
  items : item_plan list;
  cost_mbit : float;
  move_count : int;
  failed_count : int;
  transfer_mbit : float;
  rule_hops : int;
  work_units : int;
}

(* Candidate paths ordered by how much migration they would need: the sum
   of positive capacity gaps is a cheap proxy for the migrated traffic a
   clearing will cost (paper: prefer the desired path needing the least
   local adjustment). Ties keep the ranked candidate order. *)
let rank_by_gap net ~demand candidates =
  let gap_of p =
    List.fold_left
      (fun acc (e : Graph.edge) ->
        acc +. max 0.0 (Net_state.capacity_gap net e ~demand))
      0.0 (Path.edges p)
  in
  List.stable_sort
    (fun (a, _) (b, _) -> Float.compare a b)
    (List.map (fun p -> (gap_of p, p)) candidates)
  |> List.map snd

(* Shared admission machinery: [direct] tries to place/reroute on one
   congestion-free path; [clear_then_commit] migrates existing flows off
   a path, then commits. The admission mode decides the order in which
   the desired path, the remaining free candidates, and migration
   clearing are attempted. *)
let plan_install ?rng ~config ~work_units ~exclude net record =
  let demand = Flow_record.demand_mbps record in
  if Net_state.is_placed net record.Flow_record.id then Failed Already_placed
  else
  let candidates = Net_state.candidate_paths net record in
  match candidates with
  | [] -> Failed No_candidate_path
  | _ ->
      let desired =
        Routing.nth_candidate candidates
          ~ecmp:(Routing.ecmp_index record ~n:(List.length candidates))
      in
      let direct_on path =
        incr work_units;
        if Net_state.path_feasible net path ~demand then (
          match Net_state.place net record path with
          | Ok () -> Some (Installed { path; moves = [] })
          | Error _ -> assert false)
        else None
      in
      let scan_free () =
        incr work_units;
        match Routing.select ?rng ~policy:config.policy net record with
        | Some path -> (
            match Net_state.place net record path with
            | Ok () -> Some (Installed { path; moves = [] })
            | Error _ -> assert false)
        | None -> None
      in
      let clear_list paths =
        let rec try_clear = function
          | [] -> None
          | path :: rest -> (
              match
                Migration.clear_path ~order:config.order ~policy:config.policy
                  ?rng ~work_units net ~demand ~path ~exclude
              with
              | Error _ -> try_clear rest
              | Ok moves -> (
                  match Net_state.place net record path with
                  | Ok () -> Some (Installed { path; moves })
                  | Error _ -> assert false (* clear_path guarantees room *)))
        in
        try_clear paths
      in
      let ranked_clears () =
        let ranked = rank_by_gap net ~demand candidates in
        List.filteri (fun i _ -> i < config.max_clear_attempts) ranked
      in
      let attempt_sequence =
        match (config.admission, desired) with
        | Desired_first, Some d ->
            (* The paper's order: desired path direct, then local
               migration on the desired path, then the other free
               candidates, then migration on the cheapest other paths. *)
            [
              (fun () -> direct_on d);
              (fun () -> clear_list [ d ]);
              scan_free;
              (fun () ->
                clear_list
                  (List.filter (fun p -> not (Path.equal p d)) (ranked_clears ())));
            ]
        | Desired_first, None | Scan_first, _ ->
            [ scan_free; (fun () -> clear_list (ranked_clears ())) ]
      in
      let rec run = function
        | [] -> Failed Could_not_free
        | step :: rest -> ( match step () with Some o -> o | None -> run rest)
      in
      run attempt_sequence

let plan_reroute ?rng ~config ~work_units ~exclude net ~flow_id ~avoid =
  match Net_state.flow net flow_id with
  | None -> Failed Flow_not_placed
  | Some placed ->
      let demand = Flow_record.demand_mbps placed.record in
      let candidates =
        List.filter
          (fun p -> Event.path_respects p avoid && not (Path.equal p placed.path))
          (Net_state.candidate_paths net placed.record)
      in
      if candidates = [] then Failed No_candidate_path
      else begin
        (* Reroute releases the flow's own usage itself, so direct
           attempts just call it. *)
        let direct cand =
          incr work_units;
          match Net_state.reroute net flow_id cand with
          | Ok from_path -> Some (Rerouted { from_path; to_path = cand; moves = [] })
          | Error _ -> None
        in
        let rec direct_list = function
          | [] -> None
          | cand :: rest -> (
              match direct cand with Some o -> Some o | None -> direct_list rest)
        in
        (* The flow being rerouted must not be migrated to make room for
           itself. *)
        let exclude' id = id = flow_id || exclude id in
        let clear_list paths =
          let rec try_clear = function
            | [] -> None
            | path :: rest -> (
                match
                  Migration.clear_path ~order:config.order ~policy:config.policy
                    ?rng
                    ~forbidden:(fun p -> not (Event.path_respects p avoid))
                    ~work_units net ~demand ~path ~exclude:exclude'
                with
                | Error _ -> try_clear rest
                | Ok moves -> (
                    incr work_units;
                    match Net_state.reroute net flow_id path with
                    | Ok from_path -> Some (Rerouted { from_path; to_path = path; moves })
                    | Error _ ->
                        (* clear_path freed the gap measured against the
                           full demand, so reroute (which also releases
                           the flow's own share) cannot fail. *)
                        assert false))
          in
          try_clear paths
        in
        let ranked_clears () =
          let ranked = rank_by_gap net ~demand candidates in
          List.filteri (fun i _ -> i < config.max_clear_attempts) ranked
        in
        let desired =
          Routing.nth_candidate candidates
            ~ecmp:(Routing.ecmp_index placed.record ~n:(List.length candidates))
        in
        let attempt_sequence =
          match (config.admission, desired) with
          | Desired_first, Some d ->
              [
                (fun () -> direct d);
                (fun () -> clear_list [ d ]);
                (fun () ->
                  direct_list
                    (List.filter (fun p -> not (Path.equal p d)) candidates));
                (fun () ->
                  clear_list
                    (List.filter (fun p -> not (Path.equal p d)) (ranked_clears ())));
              ]
          | Desired_first, None | Scan_first, _ ->
              [
                (fun () -> direct_list candidates);
                (fun () -> clear_list (ranked_clears ()));
              ]
        in
        let rec run = function
          | [] -> Failed Could_not_free
          | step :: rest -> (
              match step () with Some o -> o | None -> run rest)
        in
        run attempt_sequence
      end

let plan ?rng ?(config = default_config) ?(frozen = fun _ -> false) net event =
  let sp =
    if Trace.enabled () then
      Some
        (Trace.span "plan"
           ~attrs:
             [
               ("event", Trace.Int event.Event.id);
               ("items", Trace.Int (List.length event.Event.work));
             ])
    else None
  in
  let h_on = Histogram.Registry.enabled () in
  let h_t0 = if h_on then Trace.now_ns () else 0L in
  let work_units = ref 0 in
  let touched = Hashtbl.create 64 in
  let exclude id = frozen id || Hashtbl.mem touched id in
  let items =
    List.map
      (fun work ->
        let outcome =
          match work with
          | Event.Install record ->
              let o =
                plan_install ?rng ~config ~work_units ~exclude net record
              in
              (match o with
              | Installed _ -> Hashtbl.replace touched record.Flow_record.id ()
              | _ -> ());
              o
          | Event.Reroute { flow_id; avoid } ->
              let o =
                plan_reroute ?rng ~config ~work_units ~exclude net ~flow_id
                  ~avoid
              in
              (match o with
              | Rerouted _ -> Hashtbl.replace touched flow_id ()
              | _ -> ());
              o
        in
        (* Make-room moves also become untouchable for later items. *)
        (match outcome with
        | Installed { moves; _ } | Rerouted { moves; _ } ->
            List.iter
              (fun (m : Migration.move) -> Hashtbl.replace touched m.flow_id ())
              moves
        | Failed _ -> ());
        { work; outcome })
      event.Event.work
  in
  let cost_mbit, move_count, failed_count, transfer_mbit, rule_hops =
    List.fold_left
      (fun (cost, mc, fc, tv, rh) item ->
        match item.outcome with
        | Installed { path; moves } ->
            ( cost +. Migration.moves_cost_mbit moves,
              mc + List.length moves,
              fc,
              tv +. Migration.moves_cost_mbit moves,
              rh + Path.hops path
              + List.fold_left
                  (fun acc (m : Migration.move) -> acc + Path.hops m.to_path)
                  0 moves )
        | Rerouted { from_path = _; to_path; moves } ->
            let own_size =
              match item.work with
              | Event.Reroute { flow_id; _ } -> (
                  match Net_state.flow net flow_id with
                  | Some placed -> placed.record.Flow_record.size_mbit
                  | None -> 0.0)
              | Event.Install _ -> 0.0
            in
            ( cost +. Migration.moves_cost_mbit moves,
              mc + List.length moves,
              fc,
              tv +. Migration.moves_cost_mbit moves +. own_size,
              rh + Path.hops to_path
              + List.fold_left
                  (fun acc (m : Migration.move) -> acc + Path.hops m.to_path)
                  0 moves )
        | Failed _ -> (cost, mc, fc + 1, tv, rh))
      (0.0, 0, 0, 0.0, 0) items
  in
  let t =
    {
      event;
      items;
      cost_mbit;
      move_count;
      failed_count;
      transfer_mbit;
      rule_hops;
      work_units = !work_units;
    }
  in
  Counters.incr Counters.Planner_plans;
  Counters.add Counters.Planner_probes t.work_units;
  if h_on then begin
    Histogram.Registry.record "planner.plan_latency_s"
      (Int64.to_float (Int64.sub (Trace.now_ns ()) h_t0) *. 1e-9);
    Histogram.Registry.record "planner.moves_per_event"
      (float_of_int t.move_count)
  end;
  (match sp with
  | Some sp ->
      Trace.finish sp
        ~attrs:
          [
            ("cost_mbit", Trace.Float t.cost_mbit);
            ("moves", Trace.Int t.move_count);
            ("failed", Trace.Int t.failed_count);
            ("units", Trace.Int t.work_units);
          ]
  | None -> ());
  t

let revert net plan =
  Counters.incr Counters.Plan_reverts;
  let sp =
    if Trace.enabled () then
      Some
        (Trace.span "revert" ~attrs:[ ("event", Trace.Int plan.event.Event.id) ])
    else None
  in
  (* Undo newest-first: each item's own action first, then its make-room
     moves, walking the item list backwards. *)
  List.iter
    (fun item ->
      (match item.outcome with
      | Installed { path = _; moves = _ } -> (
          match item.work with
          | Event.Install record -> (
              match Net_state.remove net record.Flow_record.id with
              | Ok _ -> ()
              | Error `Not_found -> assert false)
          | Event.Reroute _ -> assert false)
      | Rerouted { from_path; to_path = _; moves = _ } -> (
          match item.work with
          | Event.Reroute { flow_id; _ } -> (
              match Net_state.reroute ~admit_disabled:true net flow_id from_path with
              | Ok _ -> ()
              | Error _ -> assert false)
          | Event.Install _ -> assert false)
      | Failed _ -> ());
      match item.outcome with
      | Installed { moves; _ } | Rerouted { moves; _ } ->
          List.iter
            (fun (m : Migration.move) ->
              match
                Net_state.reroute ~admit_disabled:true net m.flow_id m.from_path
              with
              | Ok _ -> ()
              | Error _ -> assert false)
            (List.rev moves)
      | Failed _ -> ())
    (List.rev plan.items);
  match sp with Some sp -> Trace.finish sp | None -> ()

let replay net plan =
  Counters.incr Counters.Plan_replays;
  let replay_move (m : Migration.move) =
    match Net_state.reroute net m.Migration.flow_id m.Migration.to_path with
    | Ok _ -> ()
    | Error _ -> invalid_arg "Planner.replay: state diverged (move)"
  in
  List.iter
    (fun item ->
      match item.outcome with
      | Failed _ -> ()
      | Installed { path; moves } -> (
          List.iter replay_move moves;
          match item.work with
          | Event.Install record -> (
              match Net_state.place net record path with
              | Ok () -> ()
              | Error _ -> invalid_arg "Planner.replay: state diverged (install)")
          | Event.Reroute _ -> assert false)
      | Rerouted { to_path; moves; _ } -> (
          List.iter replay_move moves;
          match item.work with
          | Event.Reroute { flow_id; _ } -> (
              match Net_state.reroute net flow_id to_path with
              | Ok _ -> ()
              | Error _ -> invalid_arg "Planner.replay: state diverged (reroute)")
          | Event.Install _ -> assert false))
    plan.items

type estimate = {
  est_cost_mbit : float;
  est_failed : int;
  est_work_units : int;
}

let estimate_of p =
  {
    est_cost_mbit = p.cost_mbit;
    est_failed = p.failed_count;
    est_work_units = p.work_units;
  }

type probe = {
  probe_est : estimate;
  probe_plan : t;
  probe_touched : int array;
}

let probe ?rng ?config ?frozen net event =
  Counters.incr Counters.Cost_estimates;
  let sp =
    if Trace.enabled () then
      Some
        (Trace.span "estimate" ~attrs:[ ("event", Trace.Int event.Event.id) ])
    else None
  in
  let h_on = Histogram.Registry.enabled () in
  let h_t0 = if h_on then Trace.now_ns () else 0L in
  (* Plan speculatively inside a transaction: the undo journal restores
     the state in O(operations performed), where the historical
     plan-then-revert pair re-ran every reroute through full feasibility
     checks. The probe bracket records every edge the plan read or
     wrote, which is what makes the estimate memoisable. *)
  Net_state.start_probe net;
  Net_state.begin_txn net;
  let p = plan ?rng ?config ?frozen net event in
  Net_state.rollback net;
  let touched = Net_state.stop_probe net in
  let est = estimate_of p in
  if h_on then
    Histogram.Registry.record "planner.probe_latency_s"
      (Int64.to_float (Int64.sub (Trace.now_ns ()) h_t0) *. 1e-9);
  (match sp with
  | Some sp ->
      Trace.finish sp
        ~attrs:
          [
            ("est_cost_mbit", Trace.Float est.est_cost_mbit);
            ("est_failed", Trace.Int est.est_failed);
            ("units", Trace.Int est.est_work_units);
            ("touched_edges", Trace.Int (Array.length touched));
          ]
  | None -> ());
  { probe_est = est; probe_plan = p; probe_touched = touched }

let cost_of ?rng ?config ?frozen net event =
  (probe ?rng ?config ?frozen net event).probe_est

let pp ppf t =
  Format.fprintf ppf
    "plan[event#%d: %d items, cost %.1f Mbit, %d moves, %d failed, %d units]"
    t.event.Event.id (List.length t.items) t.cost_mbit t.move_count
    t.failed_count t.work_units
