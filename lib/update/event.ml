type avoid = Unconstrained | Avoid_node of int | Avoid_edges of int list

type work =
  | Install of Flow_record.t
  | Reroute of { flow_id : int; avoid : avoid }

type kind =
  | Additions
  | Vm_migration
  | Switch_upgrade of int
  | Link_failure of int * int

let path_respects path = function
  | Unconstrained -> true
  | Avoid_node v -> not (Path.mentions_node path v)
  | Avoid_edges ids -> not (List.exists (Path.mentions_edge path) ids)

type t = { id : int; arrival_s : float; kind : kind; work : work list }

let of_spec ?(kind = Additions) (spec : Event_gen.spec) =
  if spec.flows = [] then invalid_arg "Event.of_spec: empty flow list";
  {
    id = spec.event_id;
    arrival_s = spec.arrival_s;
    kind;
    work = List.map (fun f -> Install f) spec.flows;
  }

let of_specs ?kind specs = List.map (fun s -> of_spec ?kind s) specs

let vm_migration_event ~id ~arrival_s ~flows =
  if flows = [] then invalid_arg "Event.vm_migration_event: no flows";
  { id; arrival_s; kind = Vm_migration; work = List.map (fun f -> Install f) flows }

let switch_upgrade_event net ~id ~arrival_s ~switch =
  let crossing = Net_state.flows_through_node net switch in
  if crossing = [] then
    invalid_arg "Event.switch_upgrade_event: no flow crosses the switch";
  let work =
    List.map
      (fun (p : Net_state.placed) ->
        Reroute { flow_id = p.record.Flow_record.id; avoid = Avoid_node switch })
      crossing
  in
  { id; arrival_s; kind = Switch_upgrade switch; work }

let link_failure_event net ~id ~arrival_s ~edge =
  let g = Net_state.graph net in
  let e = Graph.edge g edge in
  let edges =
    match Graph.reverse_edge g e with
    | Some r -> [ e.Graph.id; r.Graph.id ]
    | None -> [ e.Graph.id ]
  in
  let crossing =
    List.sort_uniq compare
      (List.concat_map
         (fun eid ->
           List.map
             (fun (p : Net_state.placed) -> p.record.Flow_record.id)
             (Net_state.flows_on_edge net eid))
         edges)
  in
  if crossing = [] then
    invalid_arg "Event.link_failure_event: no flow crosses the link";
  let rev_id = match edges with [ _; r ] -> r | _ -> e.Graph.id in
  {
    id;
    arrival_s;
    kind = Link_failure (e.Graph.id, rev_id);
    work =
      List.map (fun flow_id -> Reroute { flow_id; avoid = Avoid_edges edges })
        crossing;
  }

let work_count t = List.length t.work

let install_records t =
  List.filter_map (function Install r -> Some r | Reroute _ -> None) t.work

let total_install_demand_mbps t =
  List.fold_left
    (fun acc r -> acc +. Flow_record.demand_mbps r)
    0.0 (install_records t)

let compare_by_arrival a b =
  match compare a.arrival_s b.arrival_s with
  | 0 -> compare a.id b.id
  | c -> c

let pp_kind ppf = function
  | Additions -> Format.pp_print_string ppf "additions"
  | Vm_migration -> Format.pp_print_string ppf "vm-migration"
  | Switch_upgrade s -> Format.fprintf ppf "switch-upgrade(%d)" s
  | Link_failure (a, b) -> Format.fprintf ppf "link-failure(%d,%d)" a b

let pp ppf t =
  Format.fprintf ppf "update-event#%d @%.2fs %a: %d flows" t.id t.arrival_s
    pp_kind t.kind (work_count t)
