(** Hashing anonymised trace IPs onto datacenter hosts.

    The Yahoo! trace's IPs are anonymised; the paper "uses a hash
    function to map the IP addresses of the source and destination of
    each flow into our datacenter network". This module is that hash: a
    64-bit mix (same finalizer family as SplitMix64) reduced modulo the
    host count, with a deterministic collision fix-up so a flow never
    maps to [src = dst]. *)

val host_of_ip : host_count:int -> int32 -> int
(** [host_of_ip ~host_count ip] maps an IPv4 address (as int32) to a host
    index in [0, host_count). Requires [host_count >= 1]. *)

val host_pair :
  host_count:int -> src_ip:int32 -> dst_ip:int32 -> int * int
(** Maps both endpoints; when they collide onto the same host the
    destination is shifted deterministically to the next host. Requires
    [host_count >= 2]. *)

val ip_of_string : string -> int32 option
(** Parse dotted-quad notation ("10.0.1.17"). *)

val string_of_ip : int32 -> string
