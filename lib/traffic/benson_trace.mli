(** Random trace with Benson et al. (IMC 2010) characteristics.

    "Network traffic characteristics of data centers in the wild": intra-DC
    traffic is mice-dominated — the vast majority of flows are small and
    short-lived — while a few percent of elephant flows carry most of the
    bytes; inter-arrivals are bursty (log-normal). The paper draws both
    its "random trace" (Fig. 1) and the flows of generated update events
    from these characteristics, so this module is used for both. *)

type params = {
  mice_fraction : float;  (** Fraction of flows that are mice, in [0,1]. *)
  mice_demand_lo_mbps : float;
  mice_demand_hi_mbps : float;
  elephant_demand_shape : float;  (** Pareto tail index of elephants. *)
  elephant_demand_lo_mbps : float;
  elephant_demand_hi_mbps : float;
  mice_duration_log_mean : float;
  mice_duration_log_sigma : float;
  elephant_duration_log_mean : float;
  elephant_duration_log_sigma : float;
  interarrival_log_mean : float;  (** Log-normal inter-arrival (log-s). *)
  interarrival_log_sigma : float;
}

val default_params : params
(** 80% mice at U[0.1, 10] Mbps for ~1 s; 20% elephants at bounded
    Pareto(1.2) on [10, 200] Mbps for ~10 s; bursty arrivals. *)

val generate :
  ?params:params ->
  ?first_id:int ->
  Prng.t ->
  host_count:int ->
  n:int ->
  Flow_record.t array
(** [n] flows sorted by arrival with ids from [first_id] (default 0);
    endpoints drawn uniformly over distinct host pairs. Requires
    [host_count >= 2], [n >= 0]. *)

val draw_flow :
  ?params:params ->
  Prng.t ->
  id:int ->
  src:int ->
  dst:int ->
  arrival_s:float ->
  Flow_record.t
(** One flow with Benson size/duration marginals and caller-fixed
    endpoints — the primitive {!Event_gen} builds update-event flows
    from. *)
