type spec = { event_id : int; arrival_s : float; flows : Flow_record.t list }

type shape = Heterogeneous | Synchronous | Fixed of int | Range of int * int

let flows_per_event shape rng =
  match shape with
  | Heterogeneous -> Prng.int_in rng 10 100
  | Synchronous -> Prng.int_in rng 50 60
  | Fixed n ->
      if n <= 0 then invalid_arg "Event_gen.flows_per_event: Fixed";
      n
  | Range (lo, hi) ->
      if lo <= 0 || hi < lo then invalid_arg "Event_gen.flows_per_event: Range";
      Prng.int_in rng lo hi

type arrival_process = Batch | Poisson of float

let generate ?(shape = Heterogeneous) ?(arrivals = Batch) ?flow_params
    ?(first_flow_id = 0) rng ~host_count ~n_events =
  if host_count < 2 then invalid_arg "Event_gen.generate: host_count";
  if n_events < 0 then invalid_arg "Event_gen.generate: n_events";
  let next_flow_id = ref first_flow_id in
  let clock = ref 0.0 in
  List.init n_events (fun event_id ->
      (match arrivals with
      | Batch -> ()
      | Poisson mean ->
          if mean <= 0.0 then invalid_arg "Event_gen.generate: Poisson mean";
          if event_id > 0 then
            clock := !clock +. Dist.exponential rng ~rate:(1.0 /. mean));
      let arrival_s = !clock in
      let n_flows = flows_per_event shape rng in
      let flows =
        List.init n_flows (fun _ ->
            let id = !next_flow_id in
            incr next_flow_id;
            let src = Prng.int rng host_count in
            let dst =
              let d = Prng.int rng (host_count - 1) in
              if d >= src then d + 1 else d
            in
            Benson_trace.draw_flow ?params:flow_params rng ~id ~src ~dst
              ~arrival_s)
      in
      { event_id; arrival_s; flows })

let total_flow_count specs =
  List.fold_left (fun acc s -> acc + List.length s.flows) 0 specs

let total_demand_mbps spec =
  List.fold_left (fun acc f -> acc +. Flow_record.demand_mbps f) 0.0 spec.flows

let pp_spec ppf s =
  Format.fprintf ppf "event#%d @%.2fs: %d flows, %.1f Mbps total" s.event_id
    s.arrival_s (List.length s.flows) (total_demand_mbps s)
