(* The finalizer from SplitMix64/MurmurHash3: full-avalanche mixing of a
   64-bit word, so nearby anonymised IPs spread uniformly over hosts. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let host_of_ip ~host_count ip =
  if host_count < 1 then invalid_arg "Ip_map.host_of_ip: host_count";
  let h = mix64 (Int64.of_int32 ip) in
  let v = Int64.to_int (Int64.shift_right_logical h 2) in
  v mod host_count

let host_pair ~host_count ~src_ip ~dst_ip =
  if host_count < 2 then invalid_arg "Ip_map.host_pair: host_count";
  let s = host_of_ip ~host_count src_ip in
  let d = host_of_ip ~host_count dst_ip in
  if s <> d then (s, d) else (s, (d + 1) mod host_count)

let ip_of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 -> Some v
        | _ -> None
      in
      match (octet a, octet b, octet c, octet d) with
      | Some a, Some b, Some c, Some d ->
          Some
            (Int32.logor
               (Int32.shift_left (Int32.of_int a) 24)
               (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d)))
      | _ -> None)
  | _ -> None

let string_of_ip ip =
  let b i = Int32.to_int (Int32.logand (Int32.shift_right_logical ip i) 0xFFl) in
  Printf.sprintf "%d.%d.%d.%d" (b 24) (b 16) (b 8) (b 0)
