type t = {
  id : int;
  src : int;
  dst : int;
  size_mbit : float;
  duration_s : float;
  arrival_s : float;
}

let v ~id ~src ~dst ~size_mbit ~duration_s ~arrival_s =
  if src < 0 || dst < 0 then invalid_arg "Flow_record.v: negative endpoint";
  if src = dst then invalid_arg "Flow_record.v: src = dst";
  if size_mbit <= 0.0 then invalid_arg "Flow_record.v: size must be positive";
  if duration_s <= 0.0 then
    invalid_arg "Flow_record.v: duration must be positive";
  if arrival_s < 0.0 then invalid_arg "Flow_record.v: negative arrival";
  { id; src; dst; size_mbit; duration_s; arrival_s }

let demand_mbps t = t.size_mbit /. t.duration_s
let departure_s t = t.arrival_s +. t.duration_s

let compare_by_arrival a b =
  match compare a.arrival_s b.arrival_s with
  | 0 -> compare a.id b.id
  | c -> c

let pp ppf t =
  Format.fprintf ppf "flow#%d %d->%d %.2f Mbit / %.2f s (%.2f Mbps) @%.2fs"
    t.id t.src t.dst t.size_mbit t.duration_s (demand_mbps t) t.arrival_s
