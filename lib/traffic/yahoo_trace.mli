(** Synthetic stand-in for the Yahoo! datacenter trace.

    The real dataset (Chen et al., INFOCOM 2011) is not redistributable,
    so this generator reproduces the published marginals the paper's
    evaluation actually consumes: anonymised IP endpoints (hashed onto
    hosts via {!Ip_map}, exactly as the paper does), heavy-tailed flow
    bandwidths — a small population of long-lived elephant flows carrying
    most bytes over inter-DC links — log-normal durations, and Poisson
    arrivals. See DESIGN.md §2 for the substitution argument. *)

type params = {
  demand_shape : float;  (** Pareto tail index of flow bandwidth. *)
  demand_lo_mbps : float;
  demand_hi_mbps : float;
  duration_log_mean : float;  (** mu of log-normal duration (log-seconds). *)
  duration_log_sigma : float;
  mean_interarrival_s : float;  (** Poisson arrival process. *)
}

val default_params : params
(** Bounded-Pareto(1.1) demand on [1, 400] Mbps, log-normal durations with
    median ~30 s, mean inter-arrival 50 ms. *)

val generate :
  ?params:params ->
  ?first_id:int ->
  Prng.t ->
  host_count:int ->
  n:int ->
  Flow_record.t array
(** [generate rng ~host_count ~n] draws [n] flows sorted by arrival, with
    ids [first_id, first_id + n) (default from 0). Endpoints are produced
    by drawing random anonymised IPv4 addresses and hashing them with
    {!Ip_map.host_pair}. Requires [host_count >= 2] and [n >= 0]. *)
