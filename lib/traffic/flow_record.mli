(** Trace-level description of one flow.

    This mirrors what the Yahoo! dataset records per flow — endpoints,
    size, duration, arrival — after {!Ip_map} has hashed the anonymised
    IPs onto datacenter hosts. Endpoints here are *host indices* in
    [0, host_count); they become graph node ids only when a topology
    binds them ({!Nu_net}). *)

type t = {
  id : int;  (** Unique within one generated trace. *)
  src : int;  (** Source host index. *)
  dst : int;  (** Destination host index; always <> [src]. *)
  size_mbit : float;  (** Total volume, Mbit. *)
  duration_s : float;  (** Active lifetime, seconds. *)
  arrival_s : float;  (** Arrival instant, seconds from trace start. *)
}

val demand_mbps : t -> float
(** Bandwidth requirement d^f = size / duration (Mbit/s). *)

val v :
  id:int ->
  src:int ->
  dst:int ->
  size_mbit:float ->
  duration_s:float ->
  arrival_s:float ->
  t
(** Checked constructor: positive size and duration, non-negative
    arrival, distinct non-negative endpoints. *)

val departure_s : t -> float
(** [arrival_s +. duration_s]. *)

val compare_by_arrival : t -> t -> int
(** Orders by arrival, then id — the trace replay order. *)

val pp : Format.formatter -> t -> unit
