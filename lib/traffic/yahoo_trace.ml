type params = {
  demand_shape : float;
  demand_lo_mbps : float;
  demand_hi_mbps : float;
  duration_log_mean : float;
  duration_log_sigma : float;
  mean_interarrival_s : float;
}

let default_params =
  {
    demand_shape = 1.1;
    demand_lo_mbps = 1.0;
    demand_hi_mbps = 400.0;
    duration_log_mean = log 30.0;
    duration_log_sigma = 1.0;
    mean_interarrival_s = 0.05;
  }

let generate ?(params = default_params) ?(first_id = 0) rng ~host_count ~n =
  if host_count < 2 then invalid_arg "Yahoo_trace.generate: host_count";
  if n < 0 then invalid_arg "Yahoo_trace.generate: n";
  let clock = ref 0.0 in
  Array.init n (fun i ->
      let id = first_id + i in
      clock :=
        !clock
        +. Dist.exponential rng ~rate:(1.0 /. params.mean_interarrival_s);
      (* Anonymised IPs, hashed onto hosts — the paper's own pipeline. *)
      let src_ip = Int64.to_int32 (Prng.bits64 rng) in
      let dst_ip = Int64.to_int32 (Prng.bits64 rng) in
      let src, dst = Ip_map.host_pair ~host_count ~src_ip ~dst_ip in
      let demand =
        Dist.bounded_pareto rng ~shape:params.demand_shape
          ~lo:params.demand_lo_mbps ~hi:params.demand_hi_mbps
      in
      let duration =
        Dist.lognormal rng ~mu:params.duration_log_mean
          ~sigma:params.duration_log_sigma
      in
      Flow_record.v ~id ~src ~dst
        ~size_mbit:(demand *. duration)
        ~duration_s:duration ~arrival_s:!clock)
