(** Update-event workload generation (paper §V-A).

    The evaluation generates "a set of heterogeneous network update
    events which differ in the number of flows, flow sizes, and flow
    durations": flows-per-event uniform in [10, 100] (heterogeneous) or
    [50, 60] (synchronous, §V-D), per-flow characteristics from the
    Benson trace, endpoints uniform over the whole datacenter. An event
    spec here is pure data — a group of flow records plus an arrival
    instant; {!Nu_update} turns specs into plannable events. *)

type spec = {
  event_id : int;
  arrival_s : float;
  flows : Flow_record.t list;  (** Non-empty; ids unique per workload. *)
}

type shape =
  | Heterogeneous  (** Flows per event uniform in [10, 100]. *)
  | Synchronous  (** Flows per event uniform in [50, 60]. *)
  | Fixed of int  (** Exactly that many flows per event. *)
  | Range of int * int  (** Uniform in a custom inclusive range. *)

val flows_per_event : shape -> Prng.t -> int
(** Draw a flow count for one event under the given shape. *)

type arrival_process =
  | Batch  (** All events queued at t = 0 (the paper's queue setup). *)
  | Poisson of float  (** Mean inter-arrival seconds. *)

val generate :
  ?shape:shape ->
  ?arrivals:arrival_process ->
  ?flow_params:Benson_trace.params ->
  ?first_flow_id:int ->
  Prng.t ->
  host_count:int ->
  n_events:int ->
  spec list
(** [generate rng ~host_count ~n_events] builds the event queue in
    arrival order. Defaults: [Heterogeneous], [Batch], Benson default
    flow characteristics. Flow ids are unique across the whole workload;
    each flow's [arrival_s] equals its event's arrival. Requires
    [host_count >= 2], [n_events >= 0]. *)

val total_flow_count : spec list -> int

val total_demand_mbps : spec -> float
(** Sum of bandwidth requirements of the event's flows. *)

val pp_spec : Format.formatter -> spec -> unit
