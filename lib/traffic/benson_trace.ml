type params = {
  mice_fraction : float;
  mice_demand_lo_mbps : float;
  mice_demand_hi_mbps : float;
  elephant_demand_shape : float;
  elephant_demand_lo_mbps : float;
  elephant_demand_hi_mbps : float;
  mice_duration_log_mean : float;
  mice_duration_log_sigma : float;
  elephant_duration_log_mean : float;
  elephant_duration_log_sigma : float;
  interarrival_log_mean : float;
  interarrival_log_sigma : float;
}

let default_params =
  {
    mice_fraction = 0.8;
    mice_demand_lo_mbps = 0.1;
    mice_demand_hi_mbps = 10.0;
    elephant_demand_shape = 1.2;
    elephant_demand_lo_mbps = 10.0;
    elephant_demand_hi_mbps = 200.0;
    mice_duration_log_mean = log 1.0;
    mice_duration_log_sigma = 0.8;
    elephant_duration_log_mean = log 10.0;
    elephant_duration_log_sigma = 0.8;
    interarrival_log_mean = log 0.01;
    interarrival_log_sigma = 1.0;
  }

let draw_flow ?(params = default_params) rng ~id ~src ~dst ~arrival_s =
  let mouse = Prng.unit_float rng < params.mice_fraction in
  let demand =
    if mouse then
      Prng.float_in rng params.mice_demand_lo_mbps params.mice_demand_hi_mbps
    else
      Dist.bounded_pareto rng ~shape:params.elephant_demand_shape
        ~lo:params.elephant_demand_lo_mbps ~hi:params.elephant_demand_hi_mbps
  in
  let duration =
    if mouse then
      Dist.lognormal rng ~mu:params.mice_duration_log_mean
        ~sigma:params.mice_duration_log_sigma
    else
      Dist.lognormal rng ~mu:params.elephant_duration_log_mean
        ~sigma:params.elephant_duration_log_sigma
  in
  Flow_record.v ~id ~src ~dst
    ~size_mbit:(demand *. duration)
    ~duration_s:duration ~arrival_s

let generate ?(params = default_params) ?(first_id = 0) rng ~host_count ~n =
  if host_count < 2 then invalid_arg "Benson_trace.generate: host_count";
  if n < 0 then invalid_arg "Benson_trace.generate: n";
  let clock = ref 0.0 in
  Array.init n (fun i ->
      let id = first_id + i in
      clock :=
        !clock
        +. Dist.lognormal rng ~mu:params.interarrival_log_mean
             ~sigma:params.interarrival_log_sigma;
      let src = Prng.int rng host_count in
      let dst =
        let d = Prng.int rng (host_count - 1) in
        if d >= src then d + 1 else d
      in
      draw_flow ~params rng ~id ~src ~dst ~arrival_s:!clock)
