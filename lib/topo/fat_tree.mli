(** k-ary Fat-Tree datacenter fabric (Leiserson; Al-Fares et al. layout).

    The paper's testbed: an 8-pod Fat-Tree with 1 Gbps links — 5k²/4
    switches and k³/4 servers for parameter k. The fabric is three-layered:

    - (k/2)² core switches;
    - k pods, each with k/2 aggregation and k/2 edge switches, connected
      as a complete bipartite graph inside the pod;
    - each edge switch attaches k/2 hosts;
    - aggregation switch j of every pod uplinks to core switches
      [j·k/2, (j+1)·k/2).

    All host-to-host shortest paths are computed analytically (not by
    search): 1 path for same-edge pairs, k/2 paths for same-pod pairs and
    (k/2)² paths for inter-pod pairs — the ECMP set the paper's planner
    draws candidate paths P(f) from. *)

type t

val create : ?k:int -> ?link_capacity:float -> unit -> t
(** [create ~k ~link_capacity ()] builds the fabric. [k] must be a
    positive even integer (default 8, the paper's setting);
    [link_capacity] is in Mbit/s (default 1000 = 1 Gbps). *)

val k : t -> int
val graph : t -> Graph.t
val link_capacity : t -> float

val host_count : t -> int
(** k³/4. *)

val switch_count : t -> int
(** 5k²/4. *)

(** Node-id accessors. All indices are range-checked. *)

val core : t -> int -> int
(** [core t i] with [i] in [0, (k/2)²). *)

val aggregation : t -> pod:int -> int -> int
(** [aggregation t ~pod j] with [pod] in [0,k), [j] in [0, k/2). *)

val edge : t -> pod:int -> int -> int
(** [edge t ~pod j], same ranges as {!aggregation}. *)

val host : t -> int -> int
(** [host t i] with [i] in [0, k³/4): node id of the i-th host. *)

val host_index : t -> int -> int
(** Inverse of {!host}: index of a host node id. Raises
    [Invalid_argument] when the node is not a host. *)

val pod_of_host : t -> int -> int
(** Pod number of a host node id. *)

val edge_switch_of_host : t -> int -> int
(** Edge switch a host node id attaches to. *)

type node_kind = Core | Aggregation of int | Edge of int | Host of int
(** Payload: pod number for switches, host index for hosts. *)

val kind : t -> int -> node_kind
(** Classify a node id. *)

val ecmp_paths : t -> src:int -> dst:int -> Path.t list
(** All shortest paths between two host node ids, in deterministic order.
    Raises [Invalid_argument] if either id is not a host. Empty for
    [src = dst]. *)

val to_topology : t -> Topology.t
(** Adapt to the generic {!Topology.t} interface; [candidate_paths] is
    {!ecmp_paths}. *)
