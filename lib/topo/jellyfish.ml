type t = {
  graph : Graph.t;
  n_switches : int;
  r : int;  (* inter-switch ports per switch *)
  hosts_per_switch : int;
  host_off : int;
  k_paths : int;
  cache : (int * int, Path.t list) Hashtbl.t;
}

(* One stub-matching attempt: pair up switch port stubs; return the edge
   list or None when the shuffle produced an unfixable collision. *)
let try_match rng ~n ~r =
  let stubs = Array.concat (List.init n (fun s -> Array.make r s)) in
  Nu_stats.Prng.shuffle rng stubs;
  let edges = Hashtbl.create (n * r) in
  let has a b = Hashtbl.mem edges (min a b, max a b) in
  let add a b = Hashtbl.replace edges (min a b, max a b) () in
  let m = Array.length stubs in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i + 1 < m do
    let a = stubs.(!i) in
    (* Find a later stub that forms a fresh, non-self edge and swap it
       into position i+1. *)
    let rec hunt j =
      if j >= m then None
      else if stubs.(j) <> a && not (has a stubs.(j)) then Some j
      else hunt (j + 1)
    in
    (match hunt (!i + 1) with
    | None -> ok := false
    | Some j ->
        let tmp = stubs.(!i + 1) in
        stubs.(!i + 1) <- stubs.(j);
        stubs.(j) <- tmp;
        add a stubs.(!i + 1));
    i := !i + 2
  done;
  if !ok then Some (Hashtbl.fold (fun (a, b) () acc -> (a, b) :: acc) edges [])
  else None

let connected ~n pairs =
  if n = 0 then true
  else begin
    let adj = Array.make n [] in
    List.iter
      (fun (a, b) ->
        adj.(a) <- b :: adj.(a);
        adj.(b) <- a :: adj.(b))
      pairs;
    let seen = Array.make n false in
    let rec dfs v =
      if not seen.(v) then begin
        seen.(v) <- true;
        List.iter dfs adj.(v)
      end
    in
    dfs 0;
    Array.for_all Fun.id seen
  end

let create ?(switches = 20) ?(ports_per_switch = 8) ?(inter_switch_ports = 4)
    ?(link_capacity = 1000.0) ?(candidate_paths_per_pair = 6) ~seed () =
  if inter_switch_ports <= 0 || inter_switch_ports >= ports_per_switch then
    invalid_arg "Jellyfish.create: inter_switch_ports";
  if switches <= inter_switch_ports then
    invalid_arg "Jellyfish.create: too few switches";
  if switches * inter_switch_ports mod 2 <> 0 then
    invalid_arg "Jellyfish.create: odd stub count";
  if link_capacity <= 0.0 then invalid_arg "Jellyfish.create: capacity";
  if candidate_paths_per_pair < 1 then
    invalid_arg "Jellyfish.create: candidate_paths_per_pair";
  let rng = Nu_stats.Prng.create seed in
  let hosts_per_switch = ports_per_switch - inter_switch_ports in
  let rec build attempt =
    if attempt > 200 then
      failwith "Jellyfish.create: could not build a connected regular graph"
    else
      match try_match rng ~n:switches ~r:inter_switch_ports with
      | Some pairs when connected ~n:switches pairs -> pairs
      | _ -> build (attempt + 1)
  in
  let pairs = build 0 in
  let host_off = switches in
  let graph =
    Graph.create ~initial_nodes:(switches + (switches * hosts_per_switch)) ()
  in
  List.iter
    (fun (a, b) -> ignore (Graph.add_link graph ~a ~b ~capacity:link_capacity))
    (List.sort compare pairs);
  for s = 0 to switches - 1 do
    for h = 0 to hosts_per_switch - 1 do
      ignore
        (Graph.add_link graph ~a:s
           ~b:(host_off + (s * hosts_per_switch) + h)
           ~capacity:link_capacity)
    done
  done;
  {
    graph;
    n_switches = switches;
    r = inter_switch_ports;
    hosts_per_switch;
    host_off;
    k_paths = candidate_paths_per_pair;
    cache = Hashtbl.create 1024;
  }

let graph t = t.graph
let switch_count t = t.n_switches
let host_count t = t.n_switches * t.hosts_per_switch

let host t i =
  if i < 0 || i >= host_count t then invalid_arg "Jellyfish.host";
  t.host_off + i

let host_index t v =
  if v < t.host_off || v >= t.host_off + host_count t then
    invalid_arg "Jellyfish: not a host";
  v - t.host_off

let switch_of_host t v = host_index t v / t.hosts_per_switch

let degree_ok t =
  let deg = Array.make t.n_switches 0 in
  Graph.iter_edges t.graph (fun e ->
      if e.src < t.n_switches && e.dst < t.n_switches then
        deg.(e.src) <- deg.(e.src) + 1);
  Array.for_all (fun d -> d = t.r) deg

let paths t ~src ~dst =
  if host_index t src = host_index t dst then []
  else begin
    match Hashtbl.find_opt t.cache (src, dst) with
    | Some cached -> cached
    | None ->
        let found =
          Yen.k_shortest t.graph ~k:t.k_paths ~src ~dst () |> List.map fst
        in
        Hashtbl.replace t.cache (src, dst) found;
        found
  end

let to_topology t =
  let hosts = Array.init (host_count t) (fun i -> host t i) in
  let switches = Array.init t.n_switches (fun i -> i) in
  {
    Topology.name =
      Printf.sprintf "jellyfish(%d switches, r=%d, %d hosts)" t.n_switches t.r
        (host_count t);
    graph = t.graph;
    hosts;
    switches;
    candidate_paths = (fun ~src ~dst -> paths t ~src ~dst);
    (* Random regular graphs have logarithmic diameter; hosts add two
       hops. A safe upper bound for r >= 3 at these sizes: *)
    diameter = 2 + 6;
  }
