(* Node numbering: [0, spines) spine switches, then leaves, then hosts
   (leaf-major). *)

type t = {
  graph : Graph.t;
  leaves : int;
  spines : int;
  hosts_per_leaf : int;
  leaf_off : int;
  host_off : int;
}

let create ?(leaves = 8) ?(spines = 4) ?(hosts_per_leaf = 16)
    ?(leaf_spine_capacity = 4000.0) ?(host_capacity = 1000.0) () =
  if leaves <= 0 || spines <= 0 || hosts_per_leaf <= 0 then
    invalid_arg "Leaf_spine.create: counts must be positive";
  if leaf_spine_capacity <= 0.0 || host_capacity <= 0.0 then
    invalid_arg "Leaf_spine.create: capacities must be positive";
  let node_total = spines + leaves + (leaves * hosts_per_leaf) in
  let graph = Graph.create ~initial_nodes:node_total () in
  let leaf_off = spines in
  let host_off = spines + leaves in
  for l = 0 to leaves - 1 do
    let leaf = leaf_off + l in
    for s = 0 to spines - 1 do
      ignore (Graph.add_link graph ~a:leaf ~b:s ~capacity:leaf_spine_capacity)
    done;
    for h = 0 to hosts_per_leaf - 1 do
      ignore
        (Graph.add_link graph ~a:leaf
           ~b:(host_off + (l * hosts_per_leaf) + h)
           ~capacity:host_capacity)
    done
  done;
  { graph; leaves; spines; hosts_per_leaf; leaf_off; host_off }

let graph t = t.graph
let leaves t = t.leaves
let spines t = t.spines
let host_count t = t.leaves * t.hosts_per_leaf

let host t i =
  if i < 0 || i >= host_count t then invalid_arg "Leaf_spine.host";
  t.host_off + i

let host_index t v =
  if v < t.host_off || v >= t.host_off + host_count t then
    invalid_arg "Leaf_spine: not a host";
  v - t.host_off

let leaf_of_host t v = t.leaf_off + (host_index t v / t.hosts_per_leaf)

let hop t a b =
  match Graph.find_edge t.graph ~src:a ~dst:b with
  | Some e -> e
  | None -> invalid_arg "Leaf_spine.hop: nodes are not adjacent"

let path_of_nodes t ns =
  match ns with
  | [] | [ _ ] -> invalid_arg "Leaf_spine.path_of_nodes"
  | first :: rest ->
      let rec resolve prev acc = function
        | [] -> List.rev acc
        | v :: tl -> resolve v (hop t prev v :: acc) tl
      in
      Path.make t.graph (resolve first [] rest)

let paths t ~src ~dst =
  if host_index t src = host_index t dst then []
  else begin
    let src_leaf = leaf_of_host t src and dst_leaf = leaf_of_host t dst in
    if src_leaf = dst_leaf then [ path_of_nodes t [ src; src_leaf; dst ] ]
    else
      List.init t.spines (fun s ->
          path_of_nodes t [ src; src_leaf; s; dst_leaf; dst ])
  end

let to_topology t =
  let hosts = Array.init (host_count t) (fun i -> host t i) in
  let switches = Array.init (t.spines + t.leaves) (fun i -> i) in
  {
    Topology.name =
      Printf.sprintf "leaf-spine(%dx%d,%d hosts/leaf)" t.leaves t.spines
        t.hosts_per_leaf;
    graph = t.graph;
    hosts;
    switches;
    candidate_paths = (fun ~src ~dst -> paths t ~src ~dst);
    diameter = 4;
  }
