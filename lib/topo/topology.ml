type t = {
  name : string;
  graph : Graph.t;
  hosts : int array;
  switches : int array;
  candidate_paths : src:int -> dst:int -> Path.t list;
  diameter : int;
}

let host_count t = Array.length t.hosts
let switch_count t = Array.length t.switches

let is_host t v = Array.exists (fun h -> h = v) t.hosts

let validate t =
  let n = Graph.node_count t.graph in
  let seen = Array.make n 0 in
  Array.iter (fun h -> seen.(h) <- seen.(h) + 1) t.hosts;
  Array.iter (fun s -> seen.(s) <- seen.(s) + 1) t.switches;
  let bad = ref None in
  Array.iteri
    (fun v c ->
      if c <> 1 && !bad = None then
        bad := Some (Printf.sprintf "node %d appears %d times" v c))
    seen;
  match !bad with
  | Some msg -> Error msg
  | None ->
      let err = ref None in
      let check_pair src dst =
        if !err = None && src <> dst then begin
          match t.candidate_paths ~src ~dst with
          | [] ->
              err :=
                Some (Printf.sprintf "no candidate path %d -> %d" src dst)
          | paths ->
              List.iter
                (fun p ->
                  if !err = None && (Path.src p <> src || Path.dst p <> dst)
                  then
                    err :=
                      Some
                        (Printf.sprintf "path %d -> %d connects %d -> %d" src
                           dst (Path.src p) (Path.dst p)))
                paths
        end
      in
      Array.iter (fun a -> Array.iter (fun b -> check_pair a b) t.hosts) t.hosts;
      (match !err with Some msg -> Error msg | None -> Ok ())

let pp ppf t =
  Format.fprintf ppf "%s[%d hosts, %d switches, %a, diameter %d]" t.name
    (host_count t) (switch_count t) Graph.pp t.graph t.diameter
