(** Two-tier leaf–spine (Clos) fabric.

    Not used by the paper's headline evaluation, but the schedulers are
    fabric-agnostic; a second topology exercises the generic
    {!Topology.t} path (robustness tests, ablations) and models the many
    production datacenters built as leaf–spine rather than Fat-Tree. *)

type t

val create :
  ?leaves:int ->
  ?spines:int ->
  ?hosts_per_leaf:int ->
  ?leaf_spine_capacity:float ->
  ?host_capacity:float ->
  unit ->
  t
(** Defaults: 8 leaves, 4 spines, 16 hosts per leaf, 1000 Mbps host links,
    4000 Mbps leaf–spine links (the usual oversubscribed uplink sizing).
    All counts must be positive. *)

val graph : t -> Graph.t
val leaves : t -> int
val spines : t -> int
val host_count : t -> int

val host : t -> int -> int
(** Node id of the i-th host. *)

val leaf_of_host : t -> int -> int
(** Leaf switch node id of a host node id. *)

val paths : t -> src:int -> dst:int -> Path.t list
(** Candidate paths between host node ids: the single intra-leaf path, or
    one path per spine for inter-leaf pairs. *)

val to_topology : t -> Topology.t
