(* Node numbering (dense, by layer):
     [0, half^2)                         core switches
     [core_n, core_n + k*half)           aggregation (pod-major)
     [agg_off + k*half, ... + k*half)    edge (pod-major)
     [host_off, host_off + k^3/4)        hosts (edge-major)
   where half = k/2. *)

type t = {
  k : int;
  half : int;
  graph : Graph.t;
  link_capacity : float;
  agg_off : int;
  edge_off : int;
  host_off : int;
  node_total : int;
}

let create ?(k = 8) ?(link_capacity = 1000.0) () =
  if k <= 0 || k mod 2 <> 0 then
    invalid_arg "Fat_tree.create: k must be a positive even integer";
  if link_capacity <= 0.0 then invalid_arg "Fat_tree.create: link_capacity";
  let half = k / 2 in
  let core_n = half * half in
  let agg_n = k * half and edge_n = k * half in
  let host_n = k * half * half in
  let node_total = core_n + agg_n + edge_n + host_n in
  let graph = Graph.create ~initial_nodes:node_total () in
  let agg_off = core_n in
  let edge_off = agg_off + agg_n in
  let host_off = edge_off + edge_n in
  let t = { k; half; graph; link_capacity; agg_off; edge_off; host_off; node_total } in
  let link a b = ignore (Graph.add_link graph ~a ~b ~capacity:link_capacity) in
  for pod = 0 to k - 1 do
    for j = 0 to half - 1 do
      let agg = agg_off + (pod * half) + j in
      let edge = edge_off + (pod * half) + j in
      (* Intra-pod complete bipartite layer. *)
      for j' = 0 to half - 1 do
        link (agg_off + (pod * half) + j') edge
      done;
      (* Aggregation j uplinks to cores [j*half, (j+1)*half). *)
      for c = 0 to half - 1 do
        link ((j * half) + c) agg
      done;
      (* Hosts under this edge switch. *)
      for h = 0 to half - 1 do
        link edge (host_off + (((pod * half) + j) * half) + h)
      done
    done
  done;
  t

let k t = t.k
let graph t = t.graph
let link_capacity t = t.link_capacity
let host_count t = t.k * t.half * t.half
let switch_count t = (t.half * t.half) + (2 * t.k * t.half)

let core t i =
  if i < 0 || i >= t.half * t.half then invalid_arg "Fat_tree.core";
  i

let aggregation t ~pod j =
  if pod < 0 || pod >= t.k || j < 0 || j >= t.half then
    invalid_arg "Fat_tree.aggregation";
  t.agg_off + (pod * t.half) + j

let edge t ~pod j =
  if pod < 0 || pod >= t.k || j < 0 || j >= t.half then
    invalid_arg "Fat_tree.edge";
  t.edge_off + (pod * t.half) + j

let host t i =
  if i < 0 || i >= host_count t then invalid_arg "Fat_tree.host";
  t.host_off + i

let host_index t v =
  if v < t.host_off || v >= t.node_total then
    invalid_arg "Fat_tree.host_index: not a host";
  v - t.host_off

let edge_switch_of_host t v =
  let i = host_index t v in
  t.edge_off + (i / t.half)

let pod_of_host t v =
  let i = host_index t v in
  i / (t.half * t.half)

type node_kind = Core | Aggregation of int | Edge of int | Host of int

let kind t v =
  if v < 0 || v >= t.node_total then invalid_arg "Fat_tree.kind"
  else if v < t.agg_off then Core
  else if v < t.edge_off then Aggregation ((v - t.agg_off) / t.half)
  else if v < t.host_off then Edge ((v - t.edge_off) / t.half)
  else Host (v - t.host_off)

(* Resolve the (known to exist) edge between two adjacent fabric nodes. *)
let hop t a b =
  match Graph.find_edge t.graph ~src:a ~dst:b with
  | Some e -> e
  | None -> invalid_arg "Fat_tree.hop: nodes are not adjacent"

let path_of_nodes t ns =
  let rec resolve prev acc = function
    | [] -> List.rev acc
    | v :: rest -> resolve v (hop t prev v :: acc) rest
  in
  match ns with
  | [] | [ _ ] -> invalid_arg "Fat_tree.path_of_nodes"
  | first :: rest -> Path.make t.graph (resolve first [] rest)

let ecmp_paths t ~src ~dst =
  let si = host_index t src and di = host_index t dst in
  if si = di then []
  else begin
    let src_edge = edge_switch_of_host t src in
    let dst_edge = edge_switch_of_host t dst in
    if src_edge = dst_edge then [ path_of_nodes t [ src; src_edge; dst ] ]
    else begin
      let src_pod = pod_of_host t src and dst_pod = pod_of_host t dst in
      if src_pod = dst_pod then
        (* One path per aggregation switch of the shared pod. *)
        List.init t.half (fun j ->
            let agg = aggregation t ~pod:src_pod j in
            path_of_nodes t [ src; src_edge; agg; dst_edge; dst ])
      else begin
        (* One path per (aggregation choice j, core under j) pair. *)
        let paths = ref [] in
        for j = t.half - 1 downto 0 do
          for c = t.half - 1 downto 0 do
            let agg_up = aggregation t ~pod:src_pod j in
            let core_sw = (j * t.half) + c in
            let agg_down = aggregation t ~pod:dst_pod j in
            paths :=
              path_of_nodes t
                [ src; src_edge; agg_up; core_sw; agg_down; dst_edge; dst ]
              :: !paths
          done
        done;
        !paths
      end
    end
  end

let to_topology t =
  let hosts = Array.init (host_count t) (fun i -> host t i) in
  let switches = Array.init (switch_count t) (fun i -> i) in
  {
    Topology.name = Printf.sprintf "fat-tree(k=%d)" t.k;
    graph = t.graph;
    hosts;
    switches;
    candidate_paths = (fun ~src ~dst -> ecmp_paths t ~src ~dst);
    diameter = 6;
  }
