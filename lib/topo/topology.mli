(** Topology interface consumed by the planner and schedulers.

    A topology is a built graph plus the fabric-specific knowledge the
    update machinery needs: which nodes are hosts, and the ranked
    candidate path set P(f) between two hosts. Fabric constructors
    ({!Fat_tree}, {!Leaf_spine}) produce values of this type; everything
    above this layer is fabric-agnostic. *)

type t = {
  name : string;
  graph : Graph.t;
  hosts : int array;  (** Node ids that can source/sink flows. *)
  switches : int array;  (** Every non-host node. *)
  candidate_paths : src:int -> dst:int -> Path.t list;
      (** Ranked candidate path set P(f) for a host pair; deterministic
          order, typically the ECMP shortest-path set. Empty when
          [src = dst]. *)
  diameter : int;  (** Maximum host-to-host hop distance D. *)
}

val host_count : t -> int
val switch_count : t -> int

val is_host : t -> int -> bool
(** Membership test against [hosts] (linear scan; host arrays are small). *)

val validate : t -> (unit, string) result
(** Structural sanity: hosts and switches partition the node range, every
    host pair with [src <> dst] has at least one candidate path, and all
    candidate paths actually connect the pair. Intended for tests and for
    custom user-built topologies; cost is O(hosts^2) path-set calls. *)

val pp : Format.formatter -> t -> unit
