(** Jellyfish: a random regular-graph datacenter fabric (Singla et al.,
    NSDI 2012).

    Unlike the Fat-Tree and leaf–spine, Jellyfish has no analytic ECMP
    structure: switches form a random r-regular graph and each candidate
    path set P(f) must be *searched*. This fabric therefore exercises the
    generic path machinery ({!Yen} k-shortest paths, memoised per host
    pair) under the same update planner and schedulers — demonstrating
    that nothing in the event-level stack depends on Fat-Tree structure.

    Construction is the standard stub-matching of an r-regular graph with
    bounded retries and edge-swap fix-ups, fully deterministic in the
    supplied seed. *)

type t

val create :
  ?switches:int ->
  ?ports_per_switch:int ->
  ?inter_switch_ports:int ->
  ?link_capacity:float ->
  ?candidate_paths_per_pair:int ->
  seed:int ->
  unit ->
  t
(** Defaults: 20 switches with 8 ports each, 4 of them inter-switch
    (so 4 hosts per switch = 80 hosts), 1000 Mbps links, 6 candidate
    paths per host pair. Requirements: [0 < inter_switch_ports <
    ports_per_switch], [switches > inter_switch_ports], and
    [switches * inter_switch_ports] even. Raises [Failure] if a connected
    regular graph cannot be built in the retry budget (practically only
    for adversarial parameters). *)

val graph : t -> Graph.t
val switch_count : t -> int
val host_count : t -> int

val host : t -> int -> int
(** Node id of the i-th host. *)

val switch_of_host : t -> int -> int
(** The switch a host node id attaches to. *)

val degree_ok : t -> bool
(** Every switch has exactly [inter_switch_ports] switch neighbours —
    construction postcondition, exposed for tests. *)

val paths : t -> src:int -> dst:int -> Path.t list
(** Candidate paths between host node ids: the k shortest loopless paths
    (memoised). Empty for [src = dst]. *)

val to_topology : t -> Topology.t
