(* The schedulers are fabric-agnostic: everything above Topology.t works
   unchanged on other fabrics. This example runs the same FIFO / LMTF /
   P-LMTF comparison the quickstart runs on the Fat-Tree, first on a
   two-tier leaf-spine Clos, then on a Jellyfish random graph whose
   candidate paths are found by Yen's k-shortest-path search instead of
   an analytic ECMP formula.

   Run with: dune exec examples/leaf_spine_fabric.exe *)

let compare_policies ~seed net events =
  let summaries =
    List.map
      (fun policy ->
        Metrics.of_run
          (Engine.run ~seed ~net:(Net_state.copy net) ~events policy))
      [ Policy.Fifo; Policy.Lmtf { alpha = 4 }; Policy.Plmtf { alpha = 4 } ]
  in
  List.iter (fun s -> Format.printf "%a@." Metrics.pp_summary s) summaries;
  match summaries with
  | baseline :: others ->
      Format.printf "%a@." (fun ppf -> Metrics.pp_comparison ppf ~baseline) others
  | [] -> ()

let run_fabric ~seed topo =
  (match Topology.validate topo with Ok () -> () | Error e -> failwith e);
  Format.printf "@.fabric: %a@." Topology.pp topo;
  let net = Net_state.create topo in
  let rng = Prng.create seed in
  let host_count = Topology.host_count topo in
  (* Keep host access links under 75% so update events contend on the
     fabric (an access link can never be cleared by migration). *)
  let accept net (r : Flow_record.t) path =
    let d = Flow_record.demand_mbps r in
    List.for_all
      (fun (e : Graph.edge) ->
        (not (Topology.is_host topo e.Graph.src || Topology.is_host topo e.Graph.dst))
        || (Net_state.used net e.Graph.id +. d) /. e.Graph.capacity <= 0.75)
      (Path.edges path)
  in
  let report =
    Background.fill net ~target:0.6 ~policy:Routing.Random_fit ~rng ~accept
      ~utilization:Net_state.mean_fabric_utilization
      ~make_flow:(fun ~id ~scale ->
        Background.benson_flow_maker rng ~host_count ~id ~scale)
      ~first_id:0
  in
  Format.printf "background: %d flows, fabric utilisation %.0f%%@."
    report.Background.placed
    (100.0 *. report.Background.achieved_utilization);
  let events =
    Event_gen.generate ~first_flow_id:1_000_000 rng ~host_count ~n_events:15
    |> Event.of_specs
  in
  compare_policies ~seed:(seed + 1) net events

let () =
  run_fabric ~seed:5
    (Leaf_spine.to_topology
       (Leaf_spine.create ~leaves:8 ~spines:4 ~hosts_per_leaf:16
          ~leaf_spine_capacity:4000.0 ~host_capacity:1000.0 ()));
  run_fabric ~seed:6
    (Jellyfish.to_topology
       (Jellyfish.create ~switches:24 ~ports_per_switch:10
          ~inter_switch_ports:5 ~seed:77 ()))
