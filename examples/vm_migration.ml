(* VM migration: the paper's second motivating update issue ("a set of
   new flows would be generated for migrating involved VMs to other
   servers"). Each migration event carries one bulk flow per moved VM
   from its old host to its new host; a queue of such events is then
   scheduled with FIFO vs P-LMTF.

   Run with: dune exec examples/vm_migration.exe *)

let migration_events scenario ~n_events ~vms_per_event =
  let rng = Prng.create 97 in
  let host_count = scenario.Scenario.host_count in
  let next_id = ref 1_000_000 in
  List.init n_events (fun event_id ->
      let flows =
        List.init vms_per_event (fun _ ->
            let src = Prng.int rng host_count in
            let dst =
              let d = Prng.int rng (host_count - 1) in
              if d >= src then d + 1 else d
            in
            let id = !next_id in
            incr next_id;
            (* A VM image transfer: a few GB at a few hundred Mbps. *)
            let demand = Prng.float_in rng 100.0 300.0 in
            let duration = Prng.float_in rng 20.0 60.0 in
            Flow_record.v ~id ~src ~dst ~size_mbit:(demand *. duration)
              ~duration_s:duration ~arrival_s:0.0)
      in
      Event.vm_migration_event ~id:event_id ~arrival_s:0.0 ~flows)

let () =
  let scenario = Scenario.prepare ~utilization:0.60 ~seed:23 () in
  Format.printf "network: %a@." Net_state.pp scenario.Scenario.net;
  let events = migration_events scenario ~n_events:12 ~vms_per_event:6 in
  Format.printf "queue: %d VM-migration events, %d VM transfers@."
    (List.length events)
    (List.fold_left (fun a ev -> a + Event.work_count ev) 0 events);
  let summaries =
    List.map
      (fun policy ->
        Metrics.of_run
          (Engine.run ~seed:3
             ~net:(Net_state.copy scenario.Scenario.net)
             ~events policy))
      [ Policy.Fifo; Policy.Plmtf { alpha = 4 } ]
  in
  List.iter (fun s -> Format.printf "%a@." Metrics.pp_summary s) summaries;
  match summaries with
  | [ fifo; plmtf ] ->
      Format.printf
        "P-LMTF migrates the same VMs %.0f%% faster on average (tail %.0f%%)@."
        (100.0 *. Metrics.reduction ~baseline:fifo.Metrics.avg_ect_s plmtf.Metrics.avg_ect_s)
        (100.0 *. Metrics.reduction ~baseline:fifo.Metrics.tail_ect_s plmtf.Metrics.tail_ect_s)
  | _ -> ()
