(* The paper's core motivation (Fig. 2): treating an update event's flows
   as one entity beats scheduling them as unrelated flows. This example
   shows the toy arithmetic from the paper, then replays the same
   comparison on a real loaded Fat-Tree.

   Run with: dune exec examples/event_vs_flow.exe *)

let () =
  (* The worked example: three events, one flow served per slot. *)
  Nu_expt.Fig2.run ();
  print_newline ();

  (* The same comparison on a real fabric. *)
  let scenario = Scenario.prepare ~utilization:0.65 ~seed:31 () in
  let events = Scenario.events ~shape:(Event_gen.Range (20, 40)) scenario ~n:10 in
  let run policy =
    Metrics.of_run
      (Engine.run ~seed:3 ~net:(Net_state.copy scenario.Scenario.net) ~events
         policy)
  in
  let event_level = run Policy.Fifo in
  let flow_level = run (Policy.Flow_level Policy.Round_robin) in
  Format.printf "%a@.%a@." Metrics.pp_summary event_level Metrics.pp_summary
    flow_level;
  Format.printf
    "grouping flows by event speeds the average ECT %.1fx and the tail %.1fx@."
    (flow_level.Metrics.avg_ect_s /. event_level.Metrics.avg_ect_s)
    (flow_level.Metrics.tail_ect_s /. event_level.Metrics.tail_ect_s)
