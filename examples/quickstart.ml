(* Quickstart: load an 8-pod Fat-Tree to 70% utilisation, queue 20 update
   events, and compare FIFO against the paper's LMTF and P-LMTF.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A Fat-Tree (k=8, 1 Gbps links) filled with Yahoo!-style
     background traffic until the fabric reaches 70% utilisation. *)
  let scenario = Scenario.prepare ~utilization:0.70 ~seed:42 () in
  Format.printf "network: %a@." Net_state.pp scenario.Scenario.net;

  (* 2. A queue of 30 heterogeneous update events (10-100 flows each). *)
  let events = Scenario.events scenario ~n:30 in
  Format.printf "workload: %d events, %d flows total@." (List.length events)
    (List.fold_left (fun a ev -> a + Event.work_count ev) 0 events);

  (* 3. Run each policy from a copy of the same initial state. The same
     seed drives sampling, and the same churn stream drives background
     dynamics, so the comparison is apples-to-apples. *)
  let run_policy policy =
    let churn = Scenario.churn ~target:0.70 ~seed:7 scenario in
    Engine.run ~churn ~seed:1
      ~net:(Net_state.copy scenario.Scenario.net)
      ~events policy
  in
  let summaries =
    List.map
      (fun policy -> Metrics.of_run (run_policy policy))
      [ Policy.Fifo; Policy.Lmtf { alpha = 4 }; Policy.Plmtf { alpha = 4 } ]
  in
  List.iter (fun s -> Format.printf "%a@." Metrics.pp_summary s) summaries;

  (* 4. Report the paper's headline reductions against FIFO. *)
  match summaries with
  | baseline :: others ->
      Format.printf "%a@."
        (fun ppf -> Metrics.pp_comparison ppf ~baseline)
        others
  | [] -> ()
