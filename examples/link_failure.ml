(* Link failure: the third update issue from the paper's introduction
   ("network failures"). A fabric link dies; every flow crossing it must
   be evacuated as one update event, and the dead link must not be used
   by the reroutes or by the make-room migrations.

   Run with: dune exec examples/link_failure.exe *)

let () =
  let scenario = Scenario.prepare ~utilization:0.60 ~seed:17 () in
  let net = scenario.Scenario.net in
  let g = Net_state.graph net in

  (* Fail the busiest fabric link (and its reverse direction). *)
  let busiest =
    List.fold_left
      (fun best id ->
        if Net_state.used net id > Net_state.used net best then id else best)
      (List.hd (Net_state.fabric_edges net))
      (Net_state.fabric_edges net)
  in
  let e = Graph.edge g busiest in
  Format.printf "failing link %d -> %d (%.0f Mbps in use, %d flows)@."
    e.Graph.src e.Graph.dst (Net_state.used net busiest)
    (List.length (Net_state.flows_on_edge net busiest));
  Net_state.disable_edge net busiest;
  (match Graph.reverse_edge g e with
  | Some r -> Net_state.disable_edge net r.Graph.id
  | None -> ());

  let event = Event.link_failure_event net ~id:0 ~arrival_s:0.0 ~edge:busiest in
  let plan = Planner.plan net event in
  Format.printf "%a@." Planner.pp plan;
  Format.printf
    "link drained: %b (%d flows rerouted, %d unsatisfiable, %.1f Mbit \
     migrated to make room)@."
    (Net_state.flows_on_edge net busiest = [])
    (Event.work_count event - plan.Planner.failed_count)
    plan.Planner.failed_count plan.Planner.cost_mbit;
  match Net_state.invariants_ok net with
  | Ok () -> Format.printf "network invariants hold@."
  | Error e -> failwith e
