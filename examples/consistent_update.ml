(* Executing an update event *consistently*: the event-level planner
   decides WHAT moves where; the two-phase protocol (Reitblatt et al.)
   and the Dionysus-style ordering (paper citation [9]) decide HOW to
   push it into the dataplane without transient loops or black holes.

   The example plans one update event, derives its rule transitions,
   replays them two-phase against a simulated switch-table dataplane
   (verifying packet delivery after every intermediate step), and
   reports the rule-memory overhead plus the dependency-round depth of
   the event's migrations.

   Run with: dune exec examples/consistent_update.exe *)

let () =
  let scenario = Scenario.prepare ~utilization:0.70 ~seed:51 () in
  let net = scenario.Scenario.net in
  let pre_state = Net_state.copy net in
  let fabric = Fabric.of_net net in
  Format.printf "dataplane: %d rules across %d switches@."
    (Fabric.total_rules fabric)
    (Topology.switch_count scenario.Scenario.topology);

  (* One update event. *)
  let event = List.hd (Scenario.events ~shape:(Event_gen.Range (20, 30)) scenario ~n:1) in
  let plan = Planner.plan net event in
  Format.printf "%a@." Planner.pp plan;

  (* Dependency rounds of the make-room migrations (from the pre-plan
     state): how parallelisable is this event's execution? *)
  let moves =
    List.concat_map
      (fun (item : Planner.item_plan) ->
        match item.Planner.outcome with
        | Planner.Installed { moves; _ } | Planner.Rerouted { moves; _ } -> moves
        | Planner.Failed _ -> [])
      plan.Planner.items
  in
  (match Ordering.schedule pre_state (Ordering.of_moves moves) with
  | Ok s -> Format.printf "%a@." Ordering.pp_schedule s
  | Error (Ordering.Deadlock blocked) ->
      Format.printf "ordering deadlock on %d moves@." (List.length blocked)
  | Error (Ordering.Unknown_flow id) ->
      Format.printf "ordering: unknown flow %d@." id);

  (* Two-phase execution with step-by-step consistency checking for the
     flows that were live before the update. *)
  let transitions = Two_phase.transitions_of_plan fabric plan in
  let pre_live =
    let acc = ref [] in
    Net_state.iter_flows pre_state (fun p ->
        acc := p.Net_state.record.Flow_record.id :: !acc);
    !acc
  in
  let checked = ref 0 in
  let verify stage =
    List.iter
      (fun flow_id ->
        incr checked;
        match Fabric.verify_flow fabric net ~flow_id with
        | Ok () -> ()
        | Error e -> failwith (stage ^ ": " ^ e))
      pre_live
  in
  ignore (Two_phase.stage fabric transitions);
  verify "after staging";
  List.iteri
    (fun i tr ->
      Two_phase.flip fabric tr;
      if i mod 5 = 0 then verify "mid-flip")
    transitions;
  List.iter (fun tr -> ignore (Two_phase.collect fabric tr)) transitions;
  verify "after gc";
  (match Fabric.verify_all fabric net with
  | Ok () -> ()
  | Error e -> failwith e);
  Format.printf
    "two-phase update executed: %d transitions, every packet walk (%d \
     checks) stayed consistent@."
    (List.length transitions) !checked
