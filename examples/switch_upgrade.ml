(* Switch upgrade: one of the update issues motivating the paper ("when
   upgrading a switch, all flows initially passing through it should be
   rerouted along other parts of the network").

   The example evacuates an aggregation switch of a loaded Fat-Tree: it
   builds the switch-upgrade event from the live state, plans it, shows
   the migration cost, and verifies the switch is traffic-free.

   Run with: dune exec examples/switch_upgrade.exe *)

let () =
  let scenario = Scenario.prepare ~utilization:0.60 ~seed:11 () in
  let net = scenario.Scenario.net in
  let ft = scenario.Scenario.fat_tree in
  let switch = Fat_tree.aggregation ft ~pod:2 1 in
  let before = List.length (Net_state.flows_through_node net switch) in
  Format.printf "upgrading aggregation switch %d (pod 2): %d flows cross it@."
    switch before;

  let event = Event.switch_upgrade_event net ~id:0 ~arrival_s:0.0 ~switch in
  let plan = Planner.plan net event in
  Format.printf "%a@." Planner.pp plan;

  let evacuated =
    List.for_all
      (fun (p : Net_state.placed) ->
        not (Path.mentions_node p.Net_state.path switch))
      (Net_state.flows_through_node net switch)
  in
  let remaining = List.length (Net_state.flows_through_node net switch) in
  Format.printf
    "after the update: %d flows still cross the switch (%d rerouted, %d \
     unsatisfiable)@."
    remaining
    (before - remaining)
    plan.Planner.failed_count;
  Format.printf "make-room migration cost: %.1f Mbit over %d extra moves@."
    plan.Planner.cost_mbit plan.Planner.move_count;
  Format.printf "virtual execution time: %.3f s@."
    (Exec_model.execution_time Exec_model.default plan);
  assert (evacuated || plan.Planner.failed_count > 0);
  match Net_state.invariants_ok net with
  | Ok () -> Format.printf "network invariants hold@."
  | Error e -> failwith e
